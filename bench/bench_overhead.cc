/**
 * @file
 * Section 6.6 reproduction: RecShard overheads.
 *
 *  - Solver time at the paper's full problem shape (397 EMBs x
 *    16 GPUs x 101 ICDF steps; the paper's Gurobi solves the 47,276
 *    variable MILP in under a minute — our structure-exploiting
 *    solver targets the same budget, and the exact-MILP variable
 *    count is reported for the formulation itself).
 *  - Remap-table generation time and the 4-bytes-per-row storage
 *    cost (paper: ~20 GB for RM3's 5.3 B rows).
 */

#include <chrono>
#include <iostream>

#include "recshard/base/table.hh"
#include "recshard/base/units.hh"
#include "recshard/datagen/model_zoo.hh"
#include "recshard/profiler/profiler.hh"
#include "recshard/remap/remap_table.hh"
#include "recshard/report/experiment.hh"
#include "recshard/sharding/milp_formulation.hh"
#include "recshard/sharding/recshard_solver.hh"

using namespace recshard;

namespace {

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("bench_overhead");
    ExperimentConfig::addFlags(flags);
    flags.parse(argc, argv);
    const ExperimentConfig cfg = ExperimentConfig::fromFlags(flags);

    TextTable t({"Overhead", "Measured", "Paper (Section 6.6)"});

    // --- Solver at the paper's shape (397 x 16 x 101). -----------
    const ModelSpec model = makeRmByName("rm3", cfg.scale);
    SyntheticDataset data(model, cfg.seed);
    const SystemSpec sys = SystemSpec::paper(cfg.gpus, cfg.scale);
    const auto profiles = profileDataset(data, cfg.profileSamples,
                                         4096);

    RecShardOptions rs;
    rs.batchSize = cfg.batch;
    rs.icdfSteps = 100;
    RecShardStats stats;
    recShardPlan(model, profiles, sys, rs, &stats);
    t.addRow({"partitioning/placement solve (397x16x101)",
              formatSeconds(stats.solveSeconds),
              "< 1 minute (Gurobi)"});

    // --- Exact-MILP formulation size (built, reduced solve). -----
    {
        const ModelSpec small = makeTinyModel(12, 2000, cfg.seed);
        SyntheticDataset sdata(small, cfg.seed + 1);
        const auto sprof = profileDataset(sdata, 20000, 4096);
        SystemSpec ssys = SystemSpec::paper(4, 1.0);
        ssys.hbm.capacityBytes = small.totalBytes() / 8;
        ssys.uvm.capacityBytes = small.totalBytes();
        MilpShardOptions mo;
        mo.icdfSteps = 8;
        const auto t0 = std::chrono::steady_clock::now();
        const MilpShardResult res = milpShardPlan(small, sprof, ssys,
                                                  mo);
        t.addRow({"exact MILP (12 EMBs x 4 GPUs x 9 steps, " +
                      std::to_string(res.numVars) + " vars)",
                  formatSeconds(seconds_since(t0)) + ", " +
                      std::to_string(res.milp.nodesExplored) +
                      " nodes",
                  "47,276 vars at full scale"});
    }

    // --- Remap-table generation + storage. ------------------------
    {
        const auto t0 = std::chrono::steady_clock::now();
        std::uint64_t storage = 0;
        for (std::size_t j = 0; j < model.features.size(); ++j) {
            const RemapTable table = RemapTable::build(
                model.features[j], profiles[j].cdf,
                profiles[j].cdf.touchedRows() / 2);
            storage += table.storageBytes();
        }
        const double build_s = seconds_since(t0);
        t.addRow({"remap-table build (all " +
                      std::to_string(model.numFeatures()) +
                      " EMBs at scale " + fmtDouble(cfg.scale, 4) +
                      ")",
                  formatSeconds(build_s),
                  "~20 s per GPU at full scale"});
        t.addRow({"remap storage at bench scale",
                  formatBytes(storage), "4 bytes per row"});
        t.addRow({"remap storage extrapolated to full RM3",
                  formatBytes(kRm3TotalRows * 4), "~20 GB"});
    }

    t.print(std::cout, "Section 6.6: RecShard overheads");
    return 0;
}
