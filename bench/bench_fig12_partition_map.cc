/**
 * @file
 * Fig. 12 reproduction: RecShard's partitioning decisions for RM2 —
 * per GPU, the number of EMBs assigned and the spread of per-EMB
 * UVM fractions (each bar of the paper's figure is one EMB).
 */

#include <algorithm>
#include <iostream>

#include "recshard/base/stats.hh"
#include "recshard/base/table.hh"
#include "recshard/report/experiment.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_fig12_partition_map");
    ExperimentConfig::addFlags(flags);
    flags.parse(argc, argv);
    const ExperimentConfig cfg = ExperimentConfig::fromFlags(flags);

    const ModelEvaluation eval = evaluateModel(cfg, "rm2");
    const StrategyResult &rs = eval.byName("RecShard");

    const std::uint32_t gpus = static_cast<std::uint32_t>(
        rs.gpuMeanTime.size());
    TextTable t({"GPU", "# EMBs", "UVM% min", "UVM% median",
                 "UVM% max", "Split tables"});
    std::uint64_t total_rows = 0, total_uvm = 0;
    RunningStat per_emb_uvm;
    for (std::uint32_t m = 0; m < gpus; ++m) {
        std::vector<double> uvm_pct;
        int split = 0;
        for (std::size_t j = 0; j < rs.hashSize.size(); ++j) {
            if (rs.gpu[j] != m)
                continue;
            const double pct = 100.0 *
                static_cast<double>(rs.hashSize[j] - rs.hbmRows[j]) /
                static_cast<double>(rs.hashSize[j]);
            uvm_pct.push_back(pct);
            per_emb_uvm.push(pct);
            split += rs.hbmRows[j] > 0 &&
                rs.hbmRows[j] < rs.hashSize[j];
        }
        if (uvm_pct.empty()) {
            t.addRow({std::to_string(m), "0", "-", "-", "-", "0"});
            continue;
        }
        t.addRow({std::to_string(m),
                  std::to_string(uvm_pct.size()),
                  fmtDouble(percentile(uvm_pct, 0.0), 1),
                  fmtDouble(percentile(uvm_pct, 0.5), 1),
                  fmtDouble(percentile(uvm_pct, 1.0), 1),
                  std::to_string(split)});
    }
    for (std::size_t j = 0; j < rs.hashSize.size(); ++j) {
        total_rows += rs.hashSize[j];
        total_uvm += rs.hashSize[j] - rs.hbmRows[j];
    }
    t.print(std::cout,
            "Fig. 12: RecShard partitions/placements for RM2");
    std::cout << "\nTotal rows on UVM: "
              << fmtDouble(100.0 * static_cast<double>(total_uvm) /
                               static_cast<double>(total_rows),
                           1)
              << "% (paper: 61%); mean per-EMB UVM share: "
              << fmtDouble(per_emb_uvm.mean(), 1)
              << "% (paper: 53.4%)\n";
    std::cout << "Paper: EMB count per GPU is variable (17-34) and "
              << "per-EMB UVM fractions are unique per table.\n";
    return 0;
}
