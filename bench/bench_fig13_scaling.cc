/**
 * @file
 * Fig. 13 reproduction: slowdown of each strategy's max (bottleneck)
 * EMB iteration time as the model scales 2x (RM1->RM2) and 4x
 * (RM1->RM3). The paper: heuristics slow down >3x on average while
 * RecShard degrades only ~1.2x.
 */

#include <iostream>

#include "recshard/base/table.hh"
#include "recshard/report/experiment.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_fig13_scaling");
    ExperimentConfig::addFlags(flags);
    flags.parse(argc, argv);
    const ExperimentConfig cfg = ExperimentConfig::fromFlags(flags);

    const ModelEvaluation rm1 = evaluateModel(cfg, "rm1");
    const ModelEvaluation rm2 = evaluateModel(cfg, "rm2");
    const ModelEvaluation rm3 = evaluateModel(cfg, "rm3");

    TextTable t({"Strategy", "2x model (RM2/RM1)",
                 "4x model (RM3/RM1)", "Paper note"});
    double base_sum2 = 0, base_sum4 = 0;
    int baselines = 0;
    for (const auto &s1 : rm1.strategies) {
        const double t1 = s1.meanBottleneckTime;
        const double t2 =
            rm2.byName(s1.name).meanBottleneckTime;
        const double t4 =
            rm3.byName(s1.name).meanBottleneckTime;
        const bool is_rs = s1.name == "RecShard";
        if (!is_rs) {
            base_sum2 += t2 / t1;
            base_sum4 += t4 / t1;
            ++baselines;
        }
        t.addRow({s1.name, fmtDouble(t2 / t1, 2) + "x",
                  fmtDouble(t4 / t1, 2) + "x",
                  is_rs ? "paper: ~1.2x at 4x model"
                        : "paper: >3x average at 4x model"});
    }
    t.print(std::cout,
            "Fig. 13: bottleneck-iteration slowdown under model "
            "scaling");
    std::cout << "\nBaseline average at 4x: "
              << fmtDouble(base_sum4 / baselines, 2)
              << "x (paper: 3.07x average); RecShard: "
              << fmtDouble(rm3.byName("RecShard").meanBottleneckTime
                               / rm1.byName("RecShard")
                                     .meanBottleneckTime,
                           2)
              << "x (paper: 1.21x)\n";
    return 0;
}
