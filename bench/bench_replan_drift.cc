/**
 * @file
 * Live replanning vs. a static plan under popularity drift.
 *
 * The question phase 5 cannot answer: the cluster's plans were
 * solved against a planning-time snapshot of row popularity — what
 * happens when the catalog churns out from under them? This bench
 * serves one *drifting* trace (the dataset's month advances across
 * the stream, rotating each table's hot set) twice through the
 * LiveReplanServer: once with the feedback loop disabled (the
 * static baseline every earlier phase models) and once enabled
 * (sketch -> drift trigger -> planner -> zero-downtime migration).
 * Identical trace, identical initial plans; every difference is the
 * loop.
 *
 * Enforced headline (non-zero exit on violation):
 *
 *   - at least one replan completes (the comparison is non-vacuous),
 *   - live-replan p99 <= static-plan p99 on the same trace,
 *   - zero queries shed while a migration was in flight, and
 *   - every completed epoch overlapping a migration keeps goodput
 *     >= --goodput-floor x the pre-migration epoch mean (migration
 *     steps ride idle gaps; they must not dent the serving floor).
 *
 * With --trace the drifting stream is read from a file written by
 * `bench_fig09_drift --emit-trace` (same-machine binary format)
 * instead of being generated in-process.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "recshard/base/flags.hh"
#include "recshard/base/logging.hh"
#include "recshard/base/table.hh"
#include "recshard/base/units.hh"
#include "recshard/datagen/model_zoo.hh"
#include "recshard/profiler/profiler.hh"
#include "recshard/replan/live.hh"
#include "recshard/routing/router.hh"
#include "recshard/serving/cache_admission.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_replan_drift");
    flags.addInt("features", 12, "sparse features in the model");
    flags.addInt("rows", 20000, "EMB rows per feature (pre-skew)");
    flags.addInt("dim", 128, "embedding dimension");
    flags.addDouble("zipf-alpha", 1.2,
                    "row-popularity skew applied to every table");
    flags.addInt("nodes", 3, "serving nodes behind the router");
    flags.addInt("gpus", 2, "GPUs per serving node");
    flags.addDouble("hbm-frac", 0.2,
                    "fraction of the model one node's HBM holds");
    flags.addInt("queries", 20000, "queries in the drifting trace");
    flags.addDouble("mean-samples", 8,
                    "mean ranking candidates per query");
    flags.addInt("cache-rows", 0,
                 "per-GPU LRU hot-row cache rows (default off: at "
                 "this scale LRU absorption hides the churn the "
                 "bench exists to measure)");
    flags.addDouble("overhead-us", 1.0,
                    "fixed per-query kernel overhead, us");
    flags.addDouble("sla-ms", 1.0, "latency SLA, ms");
    flags.addDouble("load-fraction", 0.65,
                    "offered load as a fraction of the measured "
                    "saturation rate (idle gaps host migration)");
    flags.addDouble("churn", 0.05,
                    "DriftModel hotChurnPerMonth: fraction of each "
                    "table's value space the hot set rotates past "
                    "per month");
    flags.addInt("months", 12, "months the drifting trace sweeps");
    flags.addInt("epoch-queries", 2000,
                 "arrivals per drift-check epoch");
    flags.addInt("max-replans", 6,
                 "migrations the live run may launch");
    flags.addDouble("hit-drop", 0.04,
                    "pinned-hit-fraction drop that arms a replan "
                    "assessment");
    flags.addDouble("min-speedup", 1.02,
                    "assessed incumbent/fresh cost ratio required "
                    "to migrate");
    flags.addInt("sketch-topk", 0,
                 "exact hot-row candidates per table sketch; must "
                 "exceed the per-table HBM row budget or the "
                 "replacement plan pins synthetic tail rows. "
                 "0 sizes it from the per-GPU HBM capacity");
    flags.addInt("sketch-width", 0,
                 "count-min counters per hash row; 0 = 4x topK");
    flags.addInt("rows-per-step", 256,
                 "rows repinned per migration step");
    flags.addDouble("step-overhead-us", 20.0,
                    "fixed per-migration-step overhead, us");
    flags.addDouble("goodput-floor", 0.9,
                    "minimum migration-epoch goodput as a fraction "
                    "of the pre-migration epoch mean");
    flags.addInt("max-outstanding", 0,
                 "admission queue bound; 0 derives a generous one "
                 "(4x the SLA bound) that only queue collapse hits");
    flags.addString("trace", "",
                    "read the drifting trace from this file "
                    "(bench_fig09_drift --emit-trace) instead of "
                    "generating it");
    flags.addInt("profile-samples", 30000, "profiling samples");
    flags.addInt("seed", 7, "model/data/load seed");
    flags.parse(argc, argv);

    const auto seed =
        static_cast<std::uint64_t>(flags.getInt("seed"));
    ModelSpec model = makeTinyModel(
        static_cast<std::uint32_t>(flags.getInt("features")),
        static_cast<std::uint64_t>(flags.getInt("rows")), seed);
    for (auto &f : model.features) {
        f.dim = static_cast<std::uint32_t>(flags.getInt("dim"));
        // A drift-sensitive catalog: one raw value per hash row
        // (no folding — folding flattens the slot distribution
        // toward uniform, hiding churn) and a uniform strong skew,
        // so the hot set is concentrated and its monthly rotation
        // erodes the pinned overlap gradually instead of all at
        // once.
        f.cardinality = f.hashSize;
        f.alpha = flags.getDouble("zipf-alpha");
    }
    SyntheticDataset data(model, seed * 2654435761ULL + 1);

    SystemSpec system = SystemSpec::paper(
        static_cast<std::uint32_t>(flags.getInt("gpus")), 1.0);
    system.hbm.capacityBytes = static_cast<std::uint64_t>(
        static_cast<double>(model.totalBytes()) *
        flags.getDouble("hbm-frac") /
        static_cast<double>(system.numGpus));
    system.uvm.capacityBytes = model.totalBytes();

    const auto profiles = profileDataset(
        data,
        static_cast<std::uint64_t>(flags.getInt("profile-samples")));

    ClusterPlanOptions cp;
    cp.numNodes =
        static_cast<std::uint32_t>(flags.getInt("nodes"));
    const RoutingCluster cluster =
        buildRoutingCluster(model, profiles, system, cp);

    {
        TextTable p({"Node", "tables", "slice", "pinned",
                     "pinned %", "declared HBM hit %"});
        for (std::uint32_t n = 0; n < cluster.numNodes(); ++n) {
            const ShardingPlan &plan = cluster.planSet.plans[n];
            std::uint64_t slice_bytes = 0, pinned_bytes = 0;
            double acc = 0.0, acc_n = 0.0;
            for (const std::uint32_t j :
                 cluster.planSet.slices[n]) {
                const auto &f = model.features[j];
                slice_bytes += f.hashSize * f.rowBytes();
                pinned_bytes +=
                    plan.tables[j].hbmRows * f.rowBytes();
                acc += plan.tables[j].hbmAccessFraction;
                acc_n += 1.0;
            }
            p.addRow({std::to_string(n),
                      std::to_string(
                          cluster.planSet.slices[n].size()),
                      formatBytes(slice_bytes),
                      formatBytes(pinned_bytes),
                      fmtDouble(slice_bytes ? 100.0 * pinned_bytes /
                                    slice_bytes : 0.0, 1),
                      fmtDouble(acc_n ? 100.0 * acc / acc_n : 0.0,
                                1)});
        }
        p.print(std::cout, "Initial per-node plans");
        std::cout << "\n";
    }

    ReplanConfig rc;
    rc.server.cacheRows =
        static_cast<std::uint64_t>(flags.getInt("cache-rows"));
    rc.server.batchOverheadSeconds =
        flags.getDouble("overhead-us") / 1e6;
    rc.server.admission.cdfs = collectCdfs(profiles);
    rc.slaSeconds = flags.getDouble("sla-ms") / 1e3;
    rc.sketch.topK =
        static_cast<std::uint32_t>(flags.getInt("sketch-topk"));
    if (rc.sketch.topK == 0) {
        // The replacement plan can pin at most one GPU's HBM worth
        // of any single table; track at least that many candidates
        // exactly so no pin falls to a synthetic tail row.
        std::uint64_t min_row_bytes = ~0ull;
        for (const auto &f : model.features)
            min_row_bytes = std::min(min_row_bytes, f.rowBytes());
        const std::uint64_t budget_rows =
            system.hbm.capacityBytes / min_row_bytes;
        std::uint32_t k = 1024;
        while (k < budget_rows && k < (1u << 20))
            k *= 2;
        rc.sketch.topK = k;
    }
    rc.sketch.width =
        static_cast<std::uint32_t>(flags.getInt("sketch-width"));
    if (rc.sketch.width == 0)
        rc.sketch.width = 4 * rc.sketch.topK;
    rc.drift.hitDropThreshold = flags.getDouble("hit-drop");
    rc.drift.minSpeedup = flags.getDouble("min-speedup");
    rc.migration.rowsPerStep = static_cast<std::uint64_t>(
        flags.getInt("rows-per-step"));
    rc.migration.stepOverheadSeconds =
        flags.getDouble("step-overhead-us") / 1e6;
    rc.epochQueries = static_cast<std::uint64_t>(
        flags.getInt("epoch-queries"));
    rc.maxReplans =
        static_cast<std::uint32_t>(flags.getInt("max-replans"));

    const auto num_queries =
        static_cast<std::uint64_t>(flags.getInt("queries"));
    LoadConfig load;
    load.qps = 1000.0; // placeholder; saturation-relative below
    load.meanQuerySamples = flags.getDouble("mean-samples");
    load.seed = seed ^ 0x60157ULL;

    // Measure saturation on the planning-time distribution, then
    // offer load-fraction of it so nodes have idle gaps for
    // migration steps to run in.
    RouterConfig probe;
    probe.policy = rc.policy;
    probe.server = rc.server;
    probe.slaSeconds = rc.slaSeconds;
    probe.localityLoadPenalty = rc.localityLoadPenalty;
    const double saturation_qps = estimateSaturationQps(
        model, cluster, probe,
        materializeRoutedTrace(data, load, num_queries));
    const double mean_service =
        static_cast<double>(cluster.numNodes()) / saturation_qps;

    // A deliberately generous admission bound: at sub-saturation
    // load it never fires, so the only thing that can shed is a
    // migration engine stalling dispatch — exactly what the
    // headline's zero-shed clause must catch.
    auto &adm = rc.overload.admission;
    adm.policy = "queue-threshold";
    adm.maxOutstanding = static_cast<std::uint64_t>(
        flags.getInt("max-outstanding"));
    if (adm.maxOutstanding == 0)
        adm.maxOutstanding = 4 *
            deriveQueueBound(rc.slaSeconds, mean_service);

    const double load_fraction = flags.getDouble("load-fraction");
    fatal_if(load_fraction <= 0.0,
             "--load-fraction must be positive");
    load.qps = load_fraction * saturation_qps;

    DriftTraceSchedule schedule;
    schedule.months =
        static_cast<std::uint32_t>(flags.getInt("months"));

    RoutedTrace trace;
    const std::string trace_path = flags.getString("trace");
    if (!trace_path.empty()) {
        std::ifstream in(trace_path, std::ios::binary);
        fatal_if(!in, "cannot open trace file '", trace_path, "'");
        trace = readRoutedTrace(in);
        inform("loaded ", trace.queries.size(),
               " queries from ", trace_path);
    } else {
        DriftModel drift;
        drift.hotChurnPerMonth = flags.getDouble("churn");
        data.setDrift(drift);
        trace = materializeDriftingRoutedTrace(data, load,
                                               num_queries,
                                               schedule);
    }

    std::cout << "Model: " << formatBytes(model.totalBytes())
              << " of EMBs; " << cp.numNodes << " nodes x "
              << system.numGpus << " GPUs; measured saturation "
              << fmtDouble(saturation_qps, 0) << " QPS; offered "
              << fmtDouble(load.qps, 0) << " QPS ("
              << fmtDouble(100 * load_fraction, 0)
              << "% of saturation); SLA "
              << formatSeconds(rc.slaSeconds) << "; churn "
              << fmtDouble(flags.getDouble("churn"), 3)
              << "/month over " << schedule.months << " months\n\n";

    ReplanConfig static_rc = rc;
    static_rc.replanEnabled = false;
    const ReplanReport stat =
        LiveReplanServer(model, cluster, static_rc).serve(trace);
    rc.replanEnabled = true;
    const ReplanReport live =
        LiveReplanServer(model, cluster, rc).serve(trace);

    TextTable t({"Run", "served %", "shed", "goodput", "p50", "p99",
                 "UVM %", "replans", "steps", "rows moved",
                 "mig time"});
    for (const ReplanReport *r : {&stat, &live})
        t.addRow({r->name,
                  fmtDouble(100.0 * r->servedQueries / r->queries,
                            1),
                  std::to_string(r->shedQueries),
                  fmtDouble(r->goodput, 0),
                  formatSeconds(r->p50Latency),
                  formatSeconds(r->p99Latency),
                  fmtDouble(100 * r->uvmAccessFraction, 1),
                  std::to_string(r->replansCompleted),
                  std::to_string(r->migrationSteps),
                  std::to_string(r->migratedRows),
                  formatSeconds(r->migrationSeconds)});
    t.print(std::cout, "Static plan vs. live replanning on one "
                       "drifting trace");
    std::cout << "\n";

    TextTable e({"Epoch", "arrivals", "served", "shed", "goodput",
                 "p99", "migrating"});
    for (const ReplanEpochStats &ep : live.epochs)
        e.addRow({std::to_string(ep.index),
                  std::to_string(ep.arrivals),
                  std::to_string(ep.served),
                  std::to_string(ep.shed),
                  fmtDouble(ep.goodput, 0),
                  formatSeconds(ep.p99),
                  ep.migrationActive ? "yes" : ""});
    e.print(std::cout, "Live-replan epochs (drift checked at each "
                       "boundary)");
    std::cout << "\n";

    // The enforced headline.
    bool holds = true;
    std::string verdict;

    const bool nonvacuous = live.replansCompleted >= 1;
    holds = holds && nonvacuous;
    verdict += std::string("replans completed: ") +
        std::to_string(live.replansCompleted) +
        (nonvacuous ? " >= 1\n" : " < 1 (vacuous run)\n");

    const bool p99_ok = live.p99Latency <= stat.p99Latency;
    holds = holds && p99_ok;
    verdict += std::string("p99 live ") +
        formatSeconds(live.p99Latency) + (p99_ok ? " <= " : " > ") +
        "static " + formatSeconds(stat.p99Latency) + "\n";

    const bool noshed = live.shedDuringMigration == 0;
    holds = holds && noshed;
    verdict += std::string("shed during migration: ") +
        std::to_string(live.shedDuringMigration) +
        (noshed ? " == 0\n" : " != 0\n");

    // Goodput floor: completed epochs that overlap a migration must
    // hold goodput-floor x the mean of the epochs before the first
    // migration (the run's own healthy reference).
    const double floor_frac = flags.getDouble("goodput-floor");
    double ref_sum = 0.0;
    std::uint64_t ref_n = 0;
    for (const ReplanEpochStats &ep : live.epochs) {
        if (ep.migrationActive)
            break;
        ref_sum += ep.goodput;
        ++ref_n;
    }
    const double reference = ref_n ? ref_sum / ref_n : 0.0;
    bool floor_ok = true;
    for (std::size_t i = 0; i < live.epochs.size(); ++i) {
        const ReplanEpochStats &ep = live.epochs[i];
        const bool completed = ep.arrivals >= rc.epochQueries;
        if (!ep.migrationActive || !completed)
            continue;
        if (ep.goodput < floor_frac * reference) {
            floor_ok = false;
            verdict += std::string("epoch ") +
                std::to_string(ep.index) + " goodput " +
                fmtDouble(ep.goodput, 0) + " < " +
                fmtDouble(floor_frac, 2) + " x reference " +
                fmtDouble(reference, 0) + "\n";
        }
    }
    holds = holds && floor_ok;
    verdict += std::string("migration-epoch goodput floor (") +
        fmtDouble(floor_frac, 2) + " x " + fmtDouble(reference, 0) +
        "): " + (floor_ok ? "held" : "violated") + "\n";

    std::cout << (holds ? "HEADLINE HOLDS" : "HEADLINE VIOLATED")
              << ": >=1 replan completed, live p99 <= static p99, "
                 "zero migration sheds, migration-epoch goodput "
                 "floor held\n"
              << verdict;
    return holds ? 0 : 1;
}
