/**
 * @file
 * Section 4.1 claim: profiling <=1% of a large training store is
 * enough for placement-quality statistics. We sweep the profile
 * sample count and measure the *replayed* quality (UVM-sourced
 * access fraction and bottleneck time) of the resulting RecShard
 * plan on held-out traffic.
 */

#include <iostream>

#include "recshard/base/table.hh"
#include "recshard/core/pipeline.hh"
#include "recshard/datagen/model_zoo.hh"
#include "recshard/report/experiment.hh"
#include "recshard/sharding/recshard_solver.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_sampling_sensitivity");
    ExperimentConfig::addFlags(flags);
    flags.parse(argc, argv);
    ExperimentConfig cfg = ExperimentConfig::fromFlags(flags);

    // A capacity-constrained mid-size model keeps the sweep quick.
    const ModelSpec model = makeRmByName("rm2", cfg.scale / 4.0);
    SyntheticDataset data(model, cfg.seed);
    const SystemSpec sys = SystemSpec::paper(cfg.gpus,
                                             cfg.scale / 4.0);
    ExecutionEngine engine(data, sys, EmbCostModel(sys));

    TextTable t({"Profile samples", "UVM access %",
                 "Bottleneck iter (ms)"});
    for (const std::uint64_t samples :
         {500ULL, 2000ULL, 8000ULL, 32000ULL, 128000ULL}) {
        const auto profiles = profileDataset(data, samples, 4096);
        RecShardOptions rs;
        rs.batchSize = cfg.batch;
        const ShardingPlan plan = recShardPlan(model, profiles, sys,
                                               rs);
        ReplayConfig rc;
        rc.batchSize = cfg.batch;
        rc.warmupIterations = cfg.warmup;
        rc.measureIterations = cfg.iters;
        const auto replays = engine.replay(
            {&plan},
            {ExecutionEngine::buildResolvers(model, plan,
                                             profiles)},
            rc);
        t.addRow({std::to_string(samples),
                  fmtDouble(100 * replays[0].uvmAccessFraction(),
                            2) + "%",
                  fmtDouble(replays[0].meanBottleneckTime * 1e3,
                            2)});
    }
    t.print(std::cout,
            "Section 4.1: plan quality vs profile sample size");
    std::cout << "\nPaper: ~1% of a multi-billion-sample store "
              << "suffices; quality saturates with sample size.\n";
    return 0;
}
