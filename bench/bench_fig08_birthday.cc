/**
 * @file
 * Fig. 8 reproduction: hash usage, collisions, and sparsity as the
 * hash size grows relative to input cardinality. At H == N, ~1/e of
 * the hash space is unused (the birthday paradox); growing H to
 * keep the tail leaves ever more reclaimable space.
 */

#include <iostream>

#include "recshard/base/table.hh"
#include "recshard/hashing/birthday.hh"
#include "recshard/report/experiment.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_fig08_birthday");
    flags.addInt("cardinality", 200000,
                 "distinct input values hashed");
    flags.parse(argc, argv);
    const auto n = static_cast<std::uint64_t>(
        flags.getInt("cardinality"));

    TextTable t({"Hash size / cardinality", "Usage (emp.)",
                 "Usage (analytic)", "Collisions", "Sparsity"});
    for (const double multiple :
         {0.25, 0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
        const auto h = static_cast<std::uint64_t>(
            static_cast<double>(n) * multiple);
        const FeatureHasher hasher(h, 4242);
        const HashUsage usage = measureHashUsage(n, hasher);
        t.addRow({fmtDouble(multiple, 2),
                  fmtDouble(usage.usageFraction(), 3),
                  fmtDouble(expectedOccupiedSlots(
                                static_cast<double>(n),
                                static_cast<double>(h)) /
                                static_cast<double>(h),
                            3),
                  fmtDouble(usage.collisionFraction(), 3),
                  fmtDouble(usage.sparsityFraction(), 3)});
    }
    t.print(std::cout, "Fig. 8: birthday-paradox hash occupancy");
    std::cout << "\nPaper: at H == N, usage = 1 - 1/e = 0.632; "
              << "sparsity grows toward 1 as H increases.\n";
    return 0;
}
