/**
 * @file
 * Cache-admission policy comparison: what should be allowed into
 * the serving-path hot-row cache?
 *
 * Sweeps admission policy x cache capacity on Poisson and bursty
 * traces, all against the *same* generated trace per arrival
 * process, so differences are attributable to the cache
 * configuration alone. The served plan is the size-greedy baseline
 * — the regime where whole tables live in UVM and the hot-row
 * cache earns its keep (a RecShard plan already pins the CDF-hot
 * rows, leaving the cache only residual temporal locality; gate a
 * cdf-gated cache above the plan's pinned coverage there). Three
 * reference points frame the sweep:
 *
 *   no-cache     -- the served plan by itself (cache disabled).
 *   hbm-pinned   -- no cache, but the same strategy re-solved with
 *                   the HBM budget enlarged by the byte budget the
 *                   cache would have occupied: is a smart cache
 *                   better than simply pinning more rows offline?
 *   recshard     -- the RecShard plan, no cache: what offline
 *                   CDF-aware planning alone achieves.
 *
 * Headline: frequency-aware admission (tinylfu or cdf-gated) meets
 * or beats plain admit-everything LRU hit rate at equal capacity —
 * enforced in tests/cache_admission_test.cc, demonstrated here.
 */

#include <algorithm>
#include <iostream>

#include "recshard/base/flags.hh"
#include "recshard/base/table.hh"
#include "recshard/base/units.hh"
#include "recshard/datagen/model_zoo.hh"
#include "recshard/engine/execution.hh"
#include "recshard/profiler/profiler.hh"
#include "recshard/serving/serving.hh"
#include "recshard/sharding/baselines.hh"
#include "recshard/sharding/recshard_solver.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_cache_admission");
    flags.addInt("features", 12, "sparse features in the model");
    flags.addInt("rows", 20000, "EMB rows per feature (pre-skew)");
    flags.addInt("dim", 128, "embedding dimension");
    flags.addInt("gpus", 2, "serving GPUs");
    flags.addDouble("hbm-frac", 0.2,
                    "fraction of the model the HBM budget holds");
    flags.addDouble("qps", 4000, "mean arrival rate");
    flags.addInt("queries", 20000, "queries served per trace");
    flags.addDouble("mean-samples", 4,
                    "mean ranking candidates per query");
    flags.addInt("cache-rows", 4000,
                 "mid sweep point; the sweep runs x1/4, x1, x4");
    flags.addDouble("hot-quantile", 0.95,
                    "cdf-gated admission hot quantile");
    flags.addDouble("sla-ms", 10.0, "latency SLA, ms");
    flags.addInt("profile-samples", 30000, "profiling samples");
    flags.addInt("seed", 7, "model/data/load seed");
    flags.parse(argc, argv);

    const auto seed =
        static_cast<std::uint64_t>(flags.getInt("seed"));
    ModelSpec model = makeTinyModel(
        static_cast<std::uint32_t>(flags.getInt("features")),
        static_cast<std::uint64_t>(flags.getInt("rows")), seed);
    for (auto &f : model.features)
        f.dim = static_cast<std::uint32_t>(flags.getInt("dim"));
    SyntheticDataset data(model, seed * 2654435761ULL + 1);

    SystemSpec system = SystemSpec::paper(
        static_cast<std::uint32_t>(flags.getInt("gpus")), 1.0);
    system.hbm.capacityBytes = static_cast<std::uint64_t>(
        static_cast<double>(model.totalBytes()) *
        flags.getDouble("hbm-frac") /
        static_cast<double>(system.numGpus));
    system.uvm.capacityBytes = model.totalBytes();

    const auto profiles = profileDataset(
        data,
        static_cast<std::uint64_t>(
            flags.getInt("profile-samples")));
    const ShardingPlan plan = greedyShard(BaselineCost::Size, model,
                                          profiles, system);
    const auto resolvers =
        ExecutionEngine::buildResolvers(model, plan, profiles);
    const ShardingPlan recshard =
        recShardPlan(model, profiles, system);
    const auto recshard_resolvers =
        ExecutionEngine::buildResolvers(model, recshard, profiles);

    const auto mid =
        static_cast<std::uint64_t>(flags.getInt("cache-rows"));
    const std::uint64_t capacities[] = {std::max<std::uint64_t>(
                                            1, mid / 4),
                                        mid, mid * 4};
    const std::uint64_t row_bytes = model.features[0].rowBytes();

    ServingConfig base;
    base.load.qps = flags.getDouble("qps");
    base.load.meanQuerySamples = flags.getDouble("mean-samples");
    base.load.seed = seed ^ 0x5e41ULL;
    base.batching.maxBatchQueries = 16;
    base.batching.maxBatchSamples = 64;
    base.batching.maxWaitSeconds = 0.002;
    base.server.batchOverheadSeconds = 5e-6;
    base.numQueries =
        static_cast<std::uint64_t>(flags.getInt("queries"));
    base.slaSeconds = flags.getDouble("sla-ms") / 1e3;

    std::cout << "Model: " << formatBytes(model.totalBytes())
              << " of EMBs; per-GPU HBM budget "
              << formatBytes(system.hbm.capacityBytes) << "; "
              << base.numQueries << " queries at " << base.load.qps
              << " QPS per trace\n\n";

    struct HeadlinePoint
    {
        const char *trace;
        double lru;
        double best;
    };
    std::vector<HeadlinePoint> headline;

    for (const bool bursty : {false, true}) {
        ServingConfig cfg = base;
        cfg.load.process = bursty ? ArrivalProcess::Bursty
                                  : ArrivalProcess::Poisson;

        TextTable t({"Variant", "Cache rows", "hit %", "UVM %",
                     "p99", "SLA viol %"});
        auto addRow = [&](const ServingReport &r,
                          std::uint64_t rows) {
            t.addRow({r.strategy,
                      rows ? std::to_string(rows) : "-",
                      rows ? fmtDouble(100 * r.cacheHitRate, 1)
                           : "-",
                      fmtDouble(100 * r.uvmAccessFraction, 2),
                      formatSeconds(r.p99Latency),
                      fmtDouble(100 * r.slaViolationRate, 2)});
        };

        // References: the served plan and the RecShard plan, both
        // with the cache disabled.
        ShardServerConfig off = cfg.server;
        off.cacheRows = 0;
        addRow(serveServerComparison(data, plan, resolvers, system,
                                     cfg, {off})
                   .front(),
               0);
        addRow(serveServerComparison(data, recshard,
                                     recshard_resolvers, system,
                                     cfg, {off})
                   .front(),
               0);

        for (const std::uint64_t cap : capacities) {
            std::vector<ShardServerConfig> servers;
            for (const char *policy :
                 {"always", "tinylfu", "cdf-gated"}) {
                ShardServerConfig s = cfg.server;
                s.cacheRows = cap;
                s.admission.policy = policy;
                s.admission.hotQuantile =
                    flags.getDouble("hot-quantile");
                s.admission.cdfs = collectCdfs(profiles);
                servers.push_back(s);
            }
            const auto reports = serveServerComparison(
                data, plan, resolvers, system, cfg, servers);
            for (const auto &r : reports)
                addRow(r, cap);

            // Same byte budget spent on statically pinning more
            // rows instead: enlarge the per-GPU HBM budget by the
            // cache's footprint and re-solve the same strategy.
            SystemSpec enlarged = system;
            enlarged.hbm.capacityBytes += cap * row_bytes;
            ShardingPlan pinned = greedyShard(
                BaselineCost::Size, model, profiles, enlarged);
            pinned.strategy = "hbm-pinned";
            const auto pinned_resolvers =
                ExecutionEngine::buildResolvers(model, pinned,
                                                profiles);
            auto pr = serveServerComparison(data, pinned,
                                            pinned_resolvers,
                                            enlarged, cfg, {off})
                          .front();
            addRow(pr, cap);

            // Track the headline at the mid capacity, per trace:
            // frequency-aware >= plain LRU hit rate.
            if (cap == mid)
                headline.push_back(
                    {bursty ? "bursty" : "Poisson",
                     reports[0].cacheHitRate,
                     std::max(reports[1].cacheHitRate,
                              reports[2].cacheHitRate)});
        }
        t.print(std::cout,
                bursty ? "Bursty arrivals"
                       : "Poisson arrivals");
        std::cout << "\n";
    }

    bool headline_holds = true;
    std::cout << "Headline (frequency-aware admission >= plain LRU "
                 "hit rate at equal capacity):\n";
    for (const HeadlinePoint &p : headline) {
        const bool holds = p.best >= p.lru;
        headline_holds = headline_holds && holds;
        std::cout << "  " << p.trace << ": "
                  << (holds ? "HOLDS" : "VIOLATED") << " ("
                  << fmtDouble(100 * p.best, 1) << "% vs "
                  << fmtDouble(100 * p.lru, 1) << "%)\n";
    }
    return headline_holds ? 0 : 1;
}
