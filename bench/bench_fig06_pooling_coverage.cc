/**
 * @file
 * Fig. 6 reproduction: per-feature average pooling factor (6a) and
 * coverage (6b), measured by the profiler on generated data.
 */

#include <iostream>

#include "recshard/base/stats.hh"
#include "recshard/base/table.hh"
#include "recshard/datagen/model_zoo.hh"
#include "recshard/profiler/profiler.hh"
#include "recshard/report/experiment.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_fig06_pooling_coverage");
    ExperimentConfig::addFlags(flags);
    flags.parse(argc, argv);
    const ExperimentConfig cfg = ExperimentConfig::fromFlags(flags);

    const ModelSpec model = makeRm1(cfg.scale);
    SyntheticDataset data(model, cfg.seed);
    const auto profiles = profileDataset(data, cfg.profileSamples,
                                         4096);

    std::vector<double> pooling, coverage;
    for (const auto &p : profiles) {
        pooling.push_back(p.avgPool);
        coverage.push_back(p.coverage);
    }

    TextTable a({"Average pooling factor", "Measured",
                 "Paper (Fig. 6a)"});
    a.addRow({"min", fmtDouble(percentile(pooling, 0.0), 1),
              "~1"});
    a.addRow({"median", fmtDouble(percentile(pooling, 0.5), 1),
              "a few tens"});
    a.addRow({"p90", fmtDouble(percentile(pooling, 0.9), 1),
              "tens to ~100"});
    a.addRow({"max", fmtDouble(percentile(pooling, 1.0), 1),
              "~200"});
    a.print(std::cout, "Fig. 6a: average pooling factor across " +
            std::to_string(profiles.size()) + " features");

    TextTable b({"Coverage", "Measured", "Paper (Fig. 6b)"});
    b.addRow({"min", fmtDouble(percentile(coverage, 0.0), 3),
              "<1%"});
    b.addRow({"median", fmtDouble(percentile(coverage, 0.5), 3),
              "wide spread"});
    b.addRow({"max", fmtDouble(percentile(coverage, 1.0), 3),
              "100%"});
    int full = 0, tiny = 0;
    for (const double c : coverage) {
        full += c > 0.99;
        tiny += c < 0.05;
    }
    b.addRow({"features at ~100%", std::to_string(full),
              "a sizeable group"});
    b.addRow({"features below 5%", std::to_string(tiny),
              "a sizeable group"});
    b.print(std::cout, "\nFig. 6b: coverage across features");
    return 0;
}
