/**
 * @file
 * The tiering headline, enforced by exit code (ROADMAP "third
 * memory tier"): a 3-tier HBM / DRAM / SSD plan serves a model that
 * is `capacity-mult`x (default 4x) larger than the node's combined
 * HBM+DRAM capacity — i.e. a model a DRAM-only node cannot hold at
 * all — with served p99 still inside the SLA. And at equal
 * capacity, the near-data SSD variant (RecSSD/RecNMP in-situ
 * pooling: only reduced vectors cross the link) beats the plain SSD
 * p99 on the identical trace.
 *
 * Checks:
 *   1. the model really overflows HBM+DRAM by >= capacity-mult;
 *   2. the registry planner produces a feasible 3-tier plan;
 *   3. served p99 through the 3-tier stack <= SLA;
 *   4. near-data SSD p99 < plain SSD p99 at equal capacity.
 */

#include <iostream>

#include "recshard/base/flags.hh"
#include "recshard/base/logging.hh"
#include "recshard/base/table.hh"
#include "recshard/base/units.hh"
#include "recshard/datagen/model_zoo.hh"
#include "recshard/engine/execution.hh"
#include "recshard/planner/registry.hh"
#include "recshard/profiler/profiler.hh"
#include "recshard/serving/serving.hh"
#include "recshard/tiering/topology.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_tiering_capacity");
    flags.addInt("features", 12, "sparse features in the model");
    flags.addInt("rows", 20000, "EMB rows per feature (pre-skew)");
    flags.addInt("dim", 128, "embedding dimension");
    flags.addInt("gpus", 2, "serving GPUs");
    flags.addDouble("capacity-mult", 4.0,
                    "model bytes over the HBM+DRAM capacity");
    flags.addDouble("hbm-frac", 1.0 / 64.0,
                    "fraction of the model each GPU's HBM holds");
    flags.addString("planner", "recshard", "registry planner");
    flags.addDouble("qps", 3000, "mean arrival rate");
    flags.addInt("queries", 20000, "queries served");
    flags.addDouble("mean-samples", 4,
                    "mean ranking candidates per query");
    flags.addDouble("sla-ms", 10.0, "latency SLA, ms");
    flags.addInt("profile-samples", 30000, "profiling samples");
    flags.addInt("seed", 11, "model/data/load seed");
    flags.parse(argc, argv);

    const auto seed =
        static_cast<std::uint64_t>(flags.getInt("seed"));
    ModelSpec model = makeTinyModel(
        static_cast<std::uint32_t>(flags.getInt("features")),
        static_cast<std::uint64_t>(flags.getInt("rows")), seed);
    for (auto &f : model.features)
        f.dim = static_cast<std::uint32_t>(flags.getInt("dim"));
    SyntheticDataset data(model, seed * 2654435761ULL + 1);

    const auto gpus =
        static_cast<std::uint32_t>(flags.getInt("gpus"));
    const double mult = flags.getDouble("capacity-mult");
    const double total =
        static_cast<double>(model.totalBytes());

    // Size the stack so HBM+DRAM together hold 1/mult of the model;
    // the SSD tier absorbs everything else with room to spare.
    const auto hbm_pg = static_cast<std::uint64_t>(
        total * flags.getDouble("hbm-frac") / gpus);
    const auto hot_pg =
        static_cast<std::uint64_t>(total / (mult * gpus));
    fatal_if(hot_pg <= hbm_pg, "hbm-frac ", flags.getDouble(
             "hbm-frac"), " leaves no DRAM at capacity-mult ",
             mult);
    const std::uint64_t dram_pg = hot_pg - hbm_pg;
    const std::uint64_t ssd_pg =
        static_cast<std::uint64_t>(total / gpus) + GB / 1000;

    const SystemSpec ssd_node =
        threeTierNode(gpus, hbm_pg, dram_pg, ssd_pg, false);
    const SystemSpec nd_node =
        threeTierNode(gpus, hbm_pg, dram_pg, ssd_pg, true);

    const double dram_only_capacity =
        static_cast<double>(gpus) *
        static_cast<double>(hbm_pg + dram_pg);
    const double overflow = total / dram_only_capacity;

    std::cout << "Model: " << formatBytes(model.totalBytes())
              << "; per-GPU HBM " << formatBytes(hbm_pg)
              << ", DRAM " << formatBytes(dram_pg) << ", SSD "
              << formatBytes(ssd_pg) << " ("
              << fmtDouble(overflow, 2)
              << "x over DRAM-only capacity)\n\n";

    const auto profiles = profileDataset(
        data, static_cast<std::uint64_t>(
                  flags.getInt("profile-samples")));

    const std::unique_ptr<Planner> planner =
        PlannerRegistry::create(flags.getString("planner"));
    PlanRequest req =
        PlanRequest::make(model, profiles, ssd_node, 16384);
    const PlanResult solved = planner->plan(req);
    fatal_if(!solved.diag.feasible, "planner '",
             flags.getString("planner"),
             "' found no feasible 3-tier plan");
    const auto resolvers = ExecutionEngine::buildResolvers(
        model, solved.plan, profiles);

    ServingConfig cfg;
    cfg.load.qps = flags.getDouble("qps");
    cfg.load.meanQuerySamples = flags.getDouble("mean-samples");
    cfg.load.seed = seed ^ 0x71e5ULL;
    cfg.numQueries =
        static_cast<std::uint64_t>(flags.getInt("queries"));
    cfg.slaSeconds = flags.getDouble("sla-ms") / 1e3;

    // The same seeded trace serves both SSD variants: the only
    // difference is whether the drive pools in storage.
    const ServingReport ssd_report = serveTraffic(
        data, solved.plan, resolvers, ssd_node, cfg);
    const ServingReport nd_report = serveTraffic(
        data, solved.plan, resolvers, nd_node, cfg);

    TextTable t({"Stack", "QPS", "p50", "p99", "max", "UVM+SSD %",
                 "SLA viol %"});
    for (const auto *r : {&ssd_report, &nd_report}) {
        t.addRow({r == &ssd_report ? "HBM/DRAM/SSD"
                                   : "HBM/DRAM/SSD-nd",
                  fmtDouble(r->qps, 0), formatSeconds(r->p50Latency),
                  formatSeconds(r->p99Latency),
                  formatSeconds(r->maxLatency),
                  fmtDouble(100 * r->uvmAccessFraction, 2),
                  fmtDouble(100 * r->slaViolationRate, 2)});
    }
    t.print(std::cout, "3-tier serving at " + fmtDouble(overflow, 1)
                           + "x DRAM-only capacity");
    std::cout << "\nPlanner notes: " << solved.diag.notes << "\n";

    bool ok = true;
    if (overflow < mult - 1e-9) {
        std::cout << "FAIL: model only " << fmtDouble(overflow, 2)
                  << "x over DRAM-only capacity (need " << mult
                  << "x)\n";
        ok = false;
    }
    if (ssd_report.p99Latency > cfg.slaSeconds) {
        std::cout << "FAIL: 3-tier p99 "
                  << formatSeconds(ssd_report.p99Latency)
                  << " over the "
                  << formatSeconds(cfg.slaSeconds) << " SLA\n";
        ok = false;
    }
    if (nd_report.p99Latency >= ssd_report.p99Latency) {
        std::cout << "FAIL: near-data p99 "
                  << formatSeconds(nd_report.p99Latency)
                  << " does not beat plain SSD "
                  << formatSeconds(ssd_report.p99Latency) << "\n";
        ok = false;
    }
    std::cout << (ok ? "\nPASS" : "\nFAIL")
              << ": 3-tier plan serves "
              << fmtDouble(overflow, 1)
              << "x DRAM-only capacity; near-data p99 "
              << formatSeconds(nd_report.p99Latency)
              << " vs plain SSD "
              << formatSeconds(ssd_report.p99Latency) << "\n";
    return ok ? 0 : 1;
}
