/**
 * @file
 * Every registered planner on one profiled instance, twice:
 *
 *  1. A single capacity-pressured node — the uniform diagnostics
 *     (one bottleneck-cost estimator, one batch size) make the
 *     strategies directly comparable, including the exact MILP,
 *     since the instance is kept small enough for it.
 *  2. A heterogeneous two-node cluster (one big-HBM node, one
 *     small) — each node's slice solved by the same planner
 *     against that node's own SystemSpec, showing how much of the
 *     hot set each strategy pins per node.
 *
 * Run:   ./bench_planner_comparison [--features N] [--rows N] ...
 */

#include <iostream>
#include <string>

#include "recshard/base/flags.hh"
#include "recshard/base/table.hh"
#include "recshard/base/units.hh"
#include "recshard/datagen/model_zoo.hh"
#include "recshard/planner/registry.hh"
#include "recshard/profiler/profiler.hh"
#include "recshard/sharding/cluster_plan.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_planner_comparison");
    flags.addInt("features", 6, "sparse features in the model");
    flags.addInt("rows", 4000, "EMB rows per feature (pre-skew)");
    flags.addInt("gpus", 2, "GPUs per node");
    flags.addDouble("hbm-frac", 0.2,
                    "fraction of the model one node's HBM holds");
    flags.addInt("batch", 4096, "cost-model batch size");
    flags.addInt("milp-steps", 4, "exact-path ICDF steps");
    flags.addInt("profile-samples", 30000, "profiling samples");
    flags.addInt("seed", 7, "model/data seed");
    flags.parse(argc, argv);

    const auto seed =
        static_cast<std::uint64_t>(flags.getInt("seed"));
    const ModelSpec model = makeTinyModel(
        static_cast<std::uint32_t>(flags.getInt("features")),
        static_cast<std::uint64_t>(flags.getInt("rows")), seed);
    SyntheticDataset data(model, seed * 2654435761ULL + 1);
    const auto profiles = profileDataset(
        data,
        static_cast<std::uint64_t>(flags.getInt("profile-samples")));

    SystemSpec system = SystemSpec::paper(
        static_cast<std::uint32_t>(flags.getInt("gpus")), 1.0);
    system.hbm.capacityBytes = static_cast<std::uint64_t>(
        static_cast<double>(model.totalBytes()) *
        flags.getDouble("hbm-frac") /
        static_cast<double>(system.numGpus));
    system.uvm.capacityBytes = model.totalBytes();

    std::cout << "Model: " << formatBytes(model.totalBytes())
              << " across " << model.numFeatures()
              << " EMBs; per-GPU HBM "
              << formatBytes(system.hbm.capacityBytes) << "; planners: ";
    bool first = true;
    for (const std::string &name : PlannerRegistry::names()) {
        std::cout << (first ? "" : ", ") << name;
        first = false;
    }
    std::cout << "\n\n";

    // ---------------------------------------- 1. one node, head-on
    PlanRequest req = PlanRequest::make(
        model, profiles, system,
        static_cast<std::uint32_t>(flags.getInt("batch")));
    req.milp.icdfSteps =
        static_cast<unsigned>(flags.getInt("milp-steps"));

    TextTable single({"Planner", "Bottleneck (ms)", "Solve time",
                      "HBM rows", "Exact", "Notes"});
    for (const std::string &name : PlannerRegistry::names()) {
        const PlanResult r =
            PlannerRegistry::create(name)->plan(req);
        single.addRow({name,
                       fmtDouble(r.diag.bottleneckCost * 1e3, 3),
                       formatSeconds(r.diag.solveSeconds),
                       std::to_string(r.plan.totalHbmRows()),
                       r.diag.exact ? "yes" : "no", r.diag.notes});
    }
    single.print(std::cout, "Single node (homogeneous)");

    // ----------------------- 2. heterogeneous two-node cluster
    // Node 0 pins ~2x this node's budget, node 1 ~0.5x; the slice
    // partitioner and each per-node solve see the difference.
    SystemSpec big = system;
    big.hbm.capacityBytes = system.hbm.capacityBytes * 2;
    SystemSpec small = system;
    small.hbm.capacityBytes = system.hbm.capacityBytes / 2;

    TextTable cluster({"Planner", "Node", "HBM budget", "Slice",
                       "HBM rows", "Bottleneck (ms)", "Solve time"});
    for (const std::string &name : PlannerRegistry::names()) {
        ClusterPlanOptions cp;
        cp.nodeSpecs = {big, small};
        cp.plannerName = name;
        cp.solver.batchSize = req.batchSize;
        cp.milp = req.milp;
        const ClusterPlanSet set =
            solveNodePlans(model, profiles, system, cp);
        for (std::uint32_t n = 0; n < 2; ++n) {
            cluster.addRow(
                {n == 0 ? name : "", std::to_string(n),
                 formatBytes(
                     set.nodeSpecs[n].hbm.capacityBytes),
                 std::to_string(set.slices[n].size()) + " EMBs",
                 std::to_string(set.plans[n].totalHbmRows()),
                 fmtDouble(set.diags[n].bottleneckCost * 1e3, 3),
                 formatSeconds(set.diags[n].solveSeconds)});
        }
    }
    cluster.print(std::cout,
                  "Heterogeneous cluster (2x vs 0.5x HBM)");
    std::cout << "\nEvery strategy is reachable by name through "
              << "PlannerRegistry; with the splitting strategies "
              << "the big node both receives more tables and pins "
              << "more hot rows.\n";
    return 0;
}
