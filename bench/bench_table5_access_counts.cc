/**
 * @file
 * Table 5 reproduction: average per-GPU, per-iteration HBM and UVM
 * access counts for every strategy. The paper's headline: baselines
 * source 20.3% (RM2) and 36.3% (RM3) of accesses from UVM while
 * RecShard sources 0.2% / 0.5%.
 */

#include <iostream>

#include "recshard/base/table.hh"
#include "recshard/report/experiment.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_table5_access_counts");
    ExperimentConfig::addFlags(flags);
    flags.parse(argc, argv);
    const ExperimentConfig cfg = ExperimentConfig::fromFlags(flags);

    TextTable t({"Model", "Strategy", "HBM/GPU/iter", "UVM/GPU/iter",
                 "UVM %", "Paper UVM %"});
    int paper_row = 0;
    for (const char *name : {"rm1", "rm2", "rm3"}) {
        const ModelEvaluation eval = evaluateModel(cfg, name);
        for (const auto &s : eval.strategies) {
            const auto &p = paper::kTable5[paper_row++];
            const double paper_uvm_pct = p.hbm + p.uvm > 0
                ? 100.0 * p.uvm / (p.hbm + p.uvm) : 0.0;
            t.addRow({eval.modelName, s.name,
                      fmtDouble(s.hbmAccessesPerGpuIter() / 1e6, 2)
                          + "M",
                      fmtDouble(s.uvmAccessesPerGpuIter() / 1e6, 3)
                          + "M",
                      fmtDouble(100 * s.uvmAccessFraction(), 2) +
                          "%",
                      fmtDouble(paper_uvm_pct, 2) + "%"});
        }
    }
    t.print(std::cout,
            "Table 5: per-GPU per-iteration EMB accesses by tier");
    std::cout << "\nPaper: baselines source 20.3% (RM2) / 36.3% "
              << "(RM3) of accesses from UVM; RecShard 0.2% / "
              << "0.5%.\n";
    return 0;
}
