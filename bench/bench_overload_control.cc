/**
 * @file
 * Overload-control comparison: admit-all vs. reject vs. degrade on
 * one multi-node cluster pushed past saturation.
 *
 * The question capacity planning cannot answer alone: when offered
 * load exceeds what the cluster can serve, what should the router
 * *do*? Admit-all (the pre-overload-control behavior) grows queues
 * without bound, so almost nothing completes inside the SLA.
 * Reject mode sheds the overflow at admission and keeps the served
 * population fast. Degrade mode serves everyone at reduced ranking
 * fidelity — fewer candidates per query — so per-query cost shrinks
 * until throughput meets the arrival rate.
 *
 * Every mode at one (process, multiplier) cell replays the *same*
 * materialized trace against the *same* per-node plans; arrival
 * rates are expressed as multiples of the cluster's *measured*
 * saturation rate, so "2.5x" means the same thing on any host.
 *
 * Enforced headline (non-zero exit on violation): at 2.5x
 * saturation, on both Poisson and bursty traces,
 *
 *   goodput(degrade) >= goodput(reject) >= goodput(admit-all)
 *
 * and the served-query p99 stays within the SLA for both controlled
 * modes.
 */

#include <iostream>
#include <vector>

#include "recshard/base/flags.hh"
#include "recshard/base/table.hh"
#include "recshard/base/units.hh"
#include "recshard/datagen/model_zoo.hh"
#include "recshard/profiler/profiler.hh"
#include "recshard/routing/router.hh"

using namespace recshard;

namespace {

struct ModeRun
{
    const char *mode;
    RoutingReport report;
};

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("bench_overload_control");
    flags.addInt("features", 12, "sparse features in the model");
    flags.addInt("rows", 20000, "EMB rows per feature (pre-skew)");
    flags.addInt("dim", 128, "embedding dimension");
    flags.addInt("nodes", 3, "serving nodes behind the router");
    flags.addInt("gpus", 2, "GPUs per serving node");
    flags.addDouble("hbm-frac", 0.2,
                    "fraction of the model one node's HBM holds");
    flags.addInt("queries", 20000, "queries per routed trace");
    flags.addDouble("mean-samples", 8,
                    "mean ranking candidates per query");
    flags.addInt("cache-rows", 500,
                 "per-GPU LRU hot-row cache rows");
    flags.addDouble("overhead-us", 1.0,
                    "fixed per-query kernel overhead, us");
    flags.addDouble("sla-ms", 1.0, "latency SLA, ms");
    flags.addString("admission", "queue-threshold",
                    "controlled-mode admission policy "
                    "(queue-threshold or adaptive)");
    flags.addInt("max-outstanding", 0,
                 "queue-threshold bound; 0 derives it from the SLA "
                 "and the measured service time");
    flags.addDouble("degrade-shed-pressure", 3.0,
                    "degrade mode's brownout->blackout backstop "
                    "(multiple of the admission bound)");
    flags.addDouble("bursty-on-ms", 1.0,
                    "bursty mean ON phase length, ms");
    flags.addDouble("bursty-off-ms", 3.0,
                    "bursty mean OFF phase length, ms");
    flags.addInt("profile-samples", 30000, "profiling samples");
    flags.addInt("seed", 7, "model/data/load seed");
    flags.parse(argc, argv);

    const auto seed =
        static_cast<std::uint64_t>(flags.getInt("seed"));
    ModelSpec model = makeTinyModel(
        static_cast<std::uint32_t>(flags.getInt("features")),
        static_cast<std::uint64_t>(flags.getInt("rows")), seed);
    for (auto &f : model.features)
        f.dim = static_cast<std::uint32_t>(flags.getInt("dim"));
    SyntheticDataset data(model, seed * 2654435761ULL + 1);

    SystemSpec system = SystemSpec::paper(
        static_cast<std::uint32_t>(flags.getInt("gpus")), 1.0);
    system.hbm.capacityBytes = static_cast<std::uint64_t>(
        static_cast<double>(model.totalBytes()) *
        flags.getDouble("hbm-frac") /
        static_cast<double>(system.numGpus));
    system.uvm.capacityBytes = model.totalBytes();

    const auto profiles = profileDataset(
        data,
        static_cast<std::uint64_t>(flags.getInt("profile-samples")));

    ClusterPlanOptions cp;
    cp.numNodes =
        static_cast<std::uint32_t>(flags.getInt("nodes"));
    const RoutingCluster cluster =
        buildRoutingCluster(model, profiles, system, cp);

    RouterConfig base;
    base.policy = RoutingPolicy::LeastOutstanding;
    base.server.cacheRows =
        static_cast<std::uint64_t>(flags.getInt("cache-rows"));
    base.server.batchOverheadSeconds =
        flags.getDouble("overhead-us") / 1e6;
    base.slaSeconds = flags.getDouble("sla-ms") / 1e3;

    const auto num_queries =
        static_cast<std::uint64_t>(flags.getInt("queries"));
    LoadConfig probe_load;
    probe_load.qps = 1000.0; // placeholder; saturation-relative below
    probe_load.meanQuerySamples = flags.getDouble("mean-samples");
    probe_load.seed = seed ^ 0x60157ULL;

    // Measure what "saturation" means on this host/model before
    // dialing arrival rates relative to it.
    const double saturation_qps = estimateSaturationQps(
        model, cluster, base,
        materializeRoutedTrace(data, probe_load, num_queries));
    const double mean_service =
        static_cast<double>(cluster.numNodes()) / saturation_qps;

    AdmissionConfig controlled;
    controlled.policy = flags.getString("admission");
    controlled.maxOutstanding = static_cast<std::uint64_t>(
        flags.getInt("max-outstanding"));
    if (controlled.maxOutstanding == 0)
        controlled.maxOutstanding =
            deriveQueueBound(base.slaSeconds, mean_service);

    RouterConfig admit_all = base;
    RouterConfig reject = base;
    reject.overload.admission = controlled;
    RouterConfig degrade = reject;
    degrade.overload.degradation.enabled = true;
    degrade.overload.degradation.shedPressure =
        flags.getDouble("degrade-shed-pressure");

    std::cout << "Model: " << formatBytes(model.totalBytes())
              << " of EMBs; " << cp.numNodes << " nodes x "
              << system.numGpus << " GPUs; measured saturation "
              << fmtDouble(saturation_qps, 0) << " QPS (mean "
              << formatSeconds(mean_service)
              << "/query); SLA " << formatSeconds(base.slaSeconds)
              << "; " << controlled.policy << " bound "
              << controlled.maxOutstanding << "\n\n";

    const std::vector<double> multipliers = {1.0, 1.5, 2.5};
    bool headline_holds = true;
    std::string verdict_lines;

    for (const ArrivalProcess process :
         {ArrivalProcess::Poisson, ArrivalProcess::Bursty}) {
        const char *process_name =
            process == ArrivalProcess::Poisson ? "Poisson"
                                               : "bursty";
        TextTable t({"Load", "Mode", "served %", "shed %",
                     "degr %", "cand %", "goodput", "p99(served)",
                     "SLA viol %", "max outst"});
        for (const double mult : multipliers) {
            LoadConfig load = probe_load;
            load.process = process;
            load.qps = mult * saturation_qps;
            // Millisecond-scale flash crowds: several full ON/OFF
            // cycles fit inside the trace (the serving-side default
            // of 50 ms ON would swallow the whole trace in one
            // burst, which is just Poisson at the inflated rate).
            load.meanOnSeconds =
                flags.getDouble("bursty-on-ms") / 1e3;
            load.meanOffSeconds =
                flags.getDouble("bursty-off-ms") / 1e3;
            const RoutedTrace trace =
                materializeRoutedTrace(data, load, num_queries);
            std::vector<ModeRun> runs;
            for (const auto &[mode, rc] :
                 {std::pair<const char *, RouterConfig *>(
                      "admit-all", &admit_all),
                  {"reject", &reject},
                  {"degrade", &degrade}})
                runs.push_back(
                    {mode,
                     Router(model, cluster, *rc).route(trace)});

            for (const ModeRun &run : runs) {
                const RoutingReport &r = run.report;
                t.addRow({fmtDouble(mult, 1) + "x", run.mode,
                          fmtDouble(100.0 * r.servedQueries /
                                        r.queries, 1),
                          fmtDouble(100 * r.shedRate, 1),
                          fmtDouble(100 * r.degradedRate, 1),
                          fmtDouble(100 * r.candidateFraction, 1),
                          fmtDouble(r.goodput, 0),
                          formatSeconds(r.p99Latency),
                          fmtDouble(100 * r.slaViolationRate, 1),
                          std::to_string(r.maxNodeOutstanding)});
            }

            if (mult == multipliers.back()) {
                const RoutingReport &aa = runs[0].report;
                const RoutingReport &rj = runs[1].report;
                const RoutingReport &dg = runs[2].report;
                const bool order = dg.goodput >= rj.goodput &&
                    rj.goodput >= aa.goodput;
                const bool sla =
                    rj.p99Latency <= base.slaSeconds &&
                    dg.p99Latency <= base.slaSeconds;
                headline_holds = headline_holds && order && sla;
                verdict_lines += std::string(process_name) + " at " +
                    fmtDouble(mult, 1) + "x: goodput degrade " +
                    fmtDouble(dg.goodput, 0) + (order ? " >= " :
                    " !>= ") + "reject " + fmtDouble(rj.goodput, 0) +
                    " >= admit-all " + fmtDouble(aa.goodput, 0) +
                    "; controlled p99 " +
                    formatSeconds(std::max(rj.p99Latency,
                                           dg.p99Latency)) +
                    (sla ? " <= " : " > ") + "SLA " +
                    formatSeconds(base.slaSeconds) + "\n";
            }
        }
        t.print(std::cout,
                std::string("Overload control under ") +
                    process_name + " arrivals");
        std::cout << "\n";
    }

    std::cout << (headline_holds ? "HEADLINE HOLDS"
                                 : "HEADLINE VIOLATED")
              << ": degrade >= reject >= admit-all goodput at 2.5x "
                 "saturation with controlled p99 within SLA\n"
              << verdict_lines;
    return headline_holds ? 0 : 1;
}
