/**
 * @file
 * Table 4 reproduction: placement disparity between the baselines
 * and RecShard — the percentage of EMB rows a baseline placed in
 * UVM that RecShard placed in HBM (UVM->HBM), and vice versa
 * (HBM->UVM), for the capacity-constrained models.
 */

#include <iostream>

#include "recshard/base/table.hh"
#include "recshard/report/experiment.hh"

using namespace recshard;

namespace {

/**
 * Baselines place whole tables, RecShard splits by rank, so row
 * overlap reduces to per-table arithmetic: a baseline-UVM table
 * contributes its RecShard HBM rows to UVM->HBM; a baseline-HBM
 * table contributes its RecShard UVM rows to HBM->UVM.
 */
struct Disparity
{
    double uvmToHbm;
    double hbmToUvm;
};

Disparity
disparity(const StrategyResult &base, const StrategyResult &rs)
{
    std::uint64_t base_uvm_rows = 0, base_uvm_in_rs_hbm = 0;
    std::uint64_t base_hbm_rows = 0, base_hbm_in_rs_uvm = 0;
    for (std::size_t j = 0; j < base.hashSize.size(); ++j) {
        if (base.hbmRows[j] == 0) { // baseline table in UVM
            base_uvm_rows += base.hashSize[j];
            base_uvm_in_rs_hbm += rs.hbmRows[j];
        } else {                    // baseline table in HBM
            base_hbm_rows += base.hashSize[j];
            base_hbm_in_rs_uvm += base.hashSize[j] - rs.hbmRows[j];
        }
    }
    Disparity d{0.0, 0.0};
    if (base_uvm_rows)
        d.uvmToHbm = 100.0 * static_cast<double>(base_uvm_in_rs_hbm)
            / static_cast<double>(base_uvm_rows);
    if (base_hbm_rows)
        d.hbmToUvm = 100.0 * static_cast<double>(base_hbm_in_rs_uvm)
            / static_cast<double>(base_hbm_rows);
    return d;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("bench_table4_disparity");
    ExperimentConfig::addFlags(flags);
    flags.parse(argc, argv);
    const ExperimentConfig cfg = ExperimentConfig::fromFlags(flags);

    struct PaperRow
    {
        const char *model;
        double sb_u2h, lb_u2h, sbl_u2h;
        double sb_h2u, lb_h2u, sbl_h2u;
    };
    const PaperRow paper_rows[] = {
        {"RM2", 28.67, 28.26, 28.26, 39.93, 39.99, 39.99},
        {"RM3", 23.29, 23.21, 23.21, 58.34, 59.36, 59.36},
    };

    TextTable t({"Model", "Disparity", "SB", "LB", "SBL",
                 "Paper (SB/LB/SBL)"});
    int pr = 0;
    for (const char *name : {"rm2", "rm3"}) {
        const ModelEvaluation eval = evaluateModel(cfg, name);
        const StrategyResult &rs = eval.byName("RecShard");
        const Disparity sb = disparity(eval.byName("Size-Based"),
                                       rs);
        const Disparity lb = disparity(eval.byName("Lookup-Based"),
                                       rs);
        const Disparity sbl =
            disparity(eval.byName("Size-Based-Lookup"), rs);
        const PaperRow &p = paper_rows[pr++];
        t.addRow({eval.modelName, "UVM->HBM",
                  fmtDouble(sb.uvmToHbm, 2) + "%",
                  fmtDouble(lb.uvmToHbm, 2) + "%",
                  fmtDouble(sbl.uvmToHbm, 2) + "%",
                  fmtDouble(p.sb_u2h, 2) + "/" +
                      fmtDouble(p.lb_u2h, 2) + "/" +
                      fmtDouble(p.sbl_u2h, 2)});
        t.addRow({eval.modelName, "HBM->UVM",
                  fmtDouble(sb.hbmToUvm, 2) + "%",
                  fmtDouble(lb.hbmToUvm, 2) + "%",
                  fmtDouble(sbl.hbmToUvm, 2) + "%",
                  fmtDouble(p.sb_h2u, 2) + "/" +
                      fmtDouble(p.lb_h2u, 2) + "/" +
                      fmtDouble(p.sbl_h2u, 2)});
    }
    t.print(std::cout,
            "Table 4: rows the baselines placed in UVM (resp. HBM) "
            "that RecShard placed in HBM (resp. UVM); RM1 needs no "
            "UVM");
    return 0;
}
