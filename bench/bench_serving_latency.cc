/**
 * @file
 * Serving-side plan comparison: RecShard vs. the size-greedy
 * baseline under identical online traffic.
 *
 * The offline Tables 3/5 ask "how fast is a training iteration?";
 * this bench asks the serving question the ROADMAP's north star
 * implies: which sharding plan meets a p99 latency SLA at N queries
 * per second? Both plans serve the *same* generated arrival trace
 * (Poisson by default, bursty on request) through the admission
 * queue + dynamic batching + per-GPU server pool, and the report
 * compares achieved QPS, p50/p95/p99 latency, UVM traffic, cache
 * hit rate, and SLA violations.
 */

#include <iostream>

#include "recshard/base/flags.hh"
#include "recshard/base/table.hh"
#include "recshard/base/units.hh"
#include "recshard/datagen/model_zoo.hh"
#include "recshard/engine/execution.hh"
#include "recshard/profiler/profiler.hh"
#include "recshard/serving/serving.hh"
#include "recshard/sharding/baselines.hh"
#include "recshard/sharding/recshard_solver.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_serving_latency");
    flags.addInt("features", 12, "sparse features in the model");
    flags.addInt("rows", 20000, "EMB rows per feature (pre-skew)");
    flags.addInt("dim", 128, "embedding dimension");
    flags.addInt("gpus", 2, "serving GPUs");
    flags.addDouble("hbm-frac", 0.2,
                    "fraction of the model the HBM budget holds");
    flags.addDouble("qps", 4000, "mean arrival rate");
    flags.addBool("bursty", "use bursty on/off arrivals");
    flags.addInt("queries", 20000, "queries served");
    flags.addDouble("mean-samples", 4,
                    "mean ranking candidates per query");
    flags.addInt("max-batch-queries", 16, "batch query target");
    flags.addInt("max-batch-samples", 64, "batch sample target");
    flags.addDouble("max-wait-ms", 2.0, "batch deadline, ms");
    flags.addInt("cache-rows", 0, "per-GPU LRU hot-row cache rows");
    flags.addDouble("sla-ms", 10.0, "latency SLA, ms");
    flags.addInt("profile-samples", 30000, "profiling samples");
    flags.addInt("seed", 7, "model/data/load seed");
    flags.parse(argc, argv);

    const auto seed =
        static_cast<std::uint64_t>(flags.getInt("seed"));
    ModelSpec model = makeTinyModel(
        static_cast<std::uint32_t>(flags.getInt("features")),
        static_cast<std::uint64_t>(flags.getInt("rows")), seed);
    for (auto &f : model.features)
        f.dim = static_cast<std::uint32_t>(flags.getInt("dim"));
    SyntheticDataset data(model, seed * 2654435761ULL + 1);

    SystemSpec system = SystemSpec::paper(
        static_cast<std::uint32_t>(flags.getInt("gpus")), 1.0);
    system.hbm.capacityBytes = static_cast<std::uint64_t>(
        static_cast<double>(model.totalBytes()) *
        flags.getDouble("hbm-frac") /
        static_cast<double>(system.numGpus));
    system.uvm.capacityBytes = model.totalBytes();

    const auto profiles = profileDataset(
        data,
        static_cast<std::uint64_t>(flags.getInt("profile-samples")));

    const ShardingPlan baseline = greedyShard(
        BaselineCost::Size, model, profiles, system);
    const ShardingPlan recshard =
        recShardPlan(model, profiles, system);

    ServingConfig cfg;
    cfg.load.process = flags.getBool("bursty")
        ? ArrivalProcess::Bursty : ArrivalProcess::Poisson;
    cfg.load.qps = flags.getDouble("qps");
    cfg.load.meanQuerySamples = flags.getDouble("mean-samples");
    cfg.load.seed = seed ^ 0x5e41ULL;
    cfg.batching.maxBatchQueries = static_cast<std::uint32_t>(
        flags.getInt("max-batch-queries"));
    cfg.batching.maxBatchSamples = static_cast<std::uint32_t>(
        flags.getInt("max-batch-samples"));
    cfg.batching.maxWaitSeconds =
        flags.getDouble("max-wait-ms") / 1e3;
    cfg.server.cacheRows =
        static_cast<std::uint64_t>(flags.getInt("cache-rows"));
    cfg.numQueries =
        static_cast<std::uint64_t>(flags.getInt("queries"));
    cfg.slaSeconds = flags.getDouble("sla-ms") / 1e3;

    std::cout << "Model: " << formatBytes(model.totalBytes())
              << " of EMBs; per-GPU HBM budget "
              << formatBytes(system.hbm.capacityBytes) << "; "
              << cfg.numQueries << " queries at "
              << cfg.load.qps << " QPS ("
              << (flags.getBool("bursty") ? "bursty" : "Poisson")
              << ")\n\n";

    const auto reports = serveTrafficComparison(
        data, {&baseline, &recshard},
        {ExecutionEngine::buildResolvers(model, baseline, profiles),
         ExecutionEngine::buildResolvers(model, recshard, profiles)},
        system, cfg);

    TextTable t({"Strategy", "QPS", "p50", "p95", "p99", "max",
                 "UVM %", "cache hit %", "SLA viol %",
                 "mean depth"});
    for (const auto &r : reports) {
        t.addRow({r.strategy, fmtDouble(r.qps, 0),
                  formatSeconds(r.p50Latency),
                  formatSeconds(r.p95Latency),
                  formatSeconds(r.p99Latency),
                  formatSeconds(r.maxLatency),
                  fmtDouble(100 * r.uvmAccessFraction, 2),
                  fmtDouble(100 * r.cacheHitRate, 1),
                  fmtDouble(100 * r.slaViolationRate, 2),
                  fmtDouble(r.meanQueueDepth, 1)});
    }
    t.print(std::cout, "Serving latency under identical traffic");

    const double speedup = reports[1].p99Latency > 0.0
        ? reports[0].p99Latency / reports[1].p99Latency : 1.0;
    std::cout << "\nRecShard p99 improvement over Size-Based: "
              << fmtDouble(speedup, 2) << "x\n";
    return 0;
}
