/**
 * @file
 * Design-choice ablation (Section 4.2 "Key Properties"): the MILP
 * combines HBM and UVM read times by summation because current GPUs
 * serialize mixed reads within a kernel; a system with concurrent
 * mixed reads would use max. This bench quantifies how the choice
 * changes RecShard's plans and their replayed quality under both
 * execution models.
 */

#include <iostream>

#include "recshard/base/table.hh"
#include "recshard/datagen/model_zoo.hh"
#include "recshard/engine/execution.hh"
#include "recshard/profiler/profiler.hh"
#include "recshard/report/experiment.hh"
#include "recshard/sharding/recshard_solver.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_ablation_combine");
    ExperimentConfig::addFlags(flags);
    flags.parse(argc, argv);
    const ExperimentConfig cfg = ExperimentConfig::fromFlags(flags);

    const double scale = cfg.scale / 4.0;
    const ModelSpec model = makeRmByName("rm2", scale);
    SyntheticDataset data(model, cfg.seed);
    const SystemSpec sys = SystemSpec::paper(cfg.gpus, scale);
    const auto profiles = profileDataset(data, cfg.profileSamples,
                                         4096);

    // Solve under each combining assumption.
    RecShardOptions sum_opts;
    sum_opts.batchSize = cfg.batch;
    RecShardOptions max_opts = sum_opts;
    max_opts.combine = EmbCostModel::Combine::Max;

    ShardingPlan sum_plan = recShardPlan(model, profiles, sys,
                                         sum_opts);
    sum_plan.strategy = "solved-for-sum";
    ShardingPlan max_plan = recShardPlan(model, profiles, sys,
                                         max_opts);
    max_plan.strategy = "solved-for-max";

    TextTable t({"Execution model", "Plan", "Bottleneck iter (ms)",
                 "UVM access %"});
    for (const auto combine : {EmbCostModel::Combine::Sum,
                               EmbCostModel::Combine::Max}) {
        ExecutionEngine engine(data, sys,
                               EmbCostModel(sys, combine));
        ReplayConfig rc;
        rc.batchSize = cfg.batch;
        rc.warmupIterations = cfg.warmup;
        rc.measureIterations = cfg.iters;
        const auto replays = engine.replay(
            {&sum_plan, &max_plan},
            {ExecutionEngine::buildResolvers(model, sum_plan,
                                             profiles),
             ExecutionEngine::buildResolvers(model, max_plan,
                                             profiles)},
            rc);
        const char *exec_name =
            combine == EmbCostModel::Combine::Sum
                ? "serialized mixed reads (sum)"
                : "concurrent mixed reads (max)";
        for (const auto &r : replays) {
            t.addRow({exec_name, r.strategy,
                      fmtDouble(r.meanBottleneckTime * 1e3, 2),
                      fmtDouble(100 * r.uvmAccessFraction(), 2) +
                          "%"});
        }
    }
    t.print(std::cout,
            "Ablation: sum- vs max-combining cost models (RM2)");
    std::cout << "\nPaper (Section 4.2): sum matches current GPUs; "
              << "max suits hypothetical concurrent mixed reads.\n";
    return 0;
}
