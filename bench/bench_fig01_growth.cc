/**
 * @file
 * Fig. 1 reproduction: DLRM memory capacity and bandwidth demand
 * growth versus accelerator hardware, 2017-2021.
 *
 * The paper's figure is a survey of production model generations.
 * We regenerate its *shape* from the workload model: each model
 * generation scales the number of features and per-feature hash
 * sizes/pooling the way the paper reports (16x capacity, ~30x
 * bandwidth demand over four years), and the hardware series uses
 * the published GPU specs the figure plots.
 */

#include <iostream>

#include "recshard/base/table.hh"
#include "recshard/base/units.hh"
#include "recshard/datagen/model_zoo.hh"

using namespace recshard;

int
main(int, char **)
{
    // Model-generation recipe: features and hash rows grow with
    // the deployment year; pooling richness grows as multi-hot
    // features are added (Section 1 attributes the growth to more
    // features and more categories per feature).
    struct Generation
    {
        const char *year;
        std::uint32_t features;
        double rows_factor;    //!< total hash rows vs 2017
        double pooling_factor; //!< mean pooling factor vs 2017
    };
    const Generation gens[] = {
        {"2017", 64, 1.0, 1.0},   {"2018", 96, 2.1, 1.8},
        {"2019", 160, 4.4, 3.4},  {"2020", 260, 8.6, 9.5},
        {"2021", 397, 16.0, 14.0},
    };

    const ModelRecipe base_recipe;
    ModelRecipe recipe0 = base_recipe;
    recipe0.numFeatures = gens[0].features;
    recipe0.totalHashRows = static_cast<std::uint64_t>(
        kRm1TotalRows / 16.0);
    recipe0.rowScale = 1.0;
    const ModelSpec gen0 = makeProductionModel("2017", recipe0);
    const double base_rows =
        static_cast<double>(gen0.totalHashRows());
    const double base_bw = gen0.expectedAccessesPerSample();

    TextTable t({"Year", "EMB Rows (norm.)", "Paper (norm.)",
                 "BW demand (norm.)", "Paper BW (norm.)",
                 "GPU HBM", "HBM BW"});
    struct Hw
    {
        const char *gpu;
        double hbm_gb;
        double hbm_bw;
    };
    const Hw hw[] = {
        {"P100", 16, 732},  {"V100", 32, 900},
        {"V100", 32, 900},  {"A100-40G", 40, 1555},
        {"A100-80G", 80, 2039},
    };
    const double paper_rows[] = {1.0, 2.1, 4.4, 8.6, 16.0};
    const double paper_bw[] = {1.0, 2.0, 4.1, 11.0, 28.35};

    for (int g = 0; g < 5; ++g) {
        ModelRecipe recipe = base_recipe;
        recipe.numFeatures = gens[g].features;
        recipe.totalHashRows = static_cast<std::uint64_t>(
            kRm1TotalRows / 16.0 * gens[g].rows_factor);
        const ModelSpec model = makeProductionModel(gens[g].year,
                                                    recipe);
        // Bandwidth demand: expected EMB rows touched per sample,
        // scaled by the generation's pooling growth.
        const double rows_norm =
            static_cast<double>(model.totalHashRows()) / base_rows;
        const double bw_norm = model.expectedAccessesPerSample() *
            gens[g].pooling_factor / base_bw;
        t.addRow({gens[g].year, fmtDouble(rows_norm, 1),
                  fmtDouble(paper_rows[g], 1), fmtDouble(bw_norm, 1),
                  fmtDouble(paper_bw[g], 1), hw[g].gpu,
                  fmtDouble(hw[g].hbm_bw, 0) + " GB/s"});
    }
    t.print(std::cout,
            "Fig. 1: DLRM demand growth vs hardware (2017 = 1.0)");
    std::cout << "\nPaper: 16x capacity growth vs <6x HBM capacity;"
              << " ~30x bandwidth demand growth.\n";
    return 0;
}
