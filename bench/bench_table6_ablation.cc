/**
 * @file
 * Table 6 reproduction: the Section 6.5 ablation. Four RecShard
 * formulations (CDF only, CDF + Coverage, CDF + Pooling, Full) on
 * RM3, 16 GPUs, reporting HBM and UVM access totals. The paper's
 * ladder: 2.4% -> 1.3% -> 0.9% -> 0.5% of accesses sourced from
 * UVM.
 */

#include <iostream>

#include "recshard/base/table.hh"
#include "recshard/report/experiment.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_table6_ablation");
    ExperimentConfig::addFlags(flags);
    flags.parse(argc, argv);
    const ExperimentConfig cfg = ExperimentConfig::fromFlags(flags);

    const ModelEvaluation eval = evaluateAblation(cfg, "rm3");

    struct PaperRow
    {
        const char *name;
        double hbm, uvm;
    };
    const PaperRow paper_rows[] = {
        {"CDF Only", 67.79e9, 1.63e9},
        {"CDF + Coverage", 68.54e9, 0.881e9},
        {"CDF + Pooling", 68.82e9, 0.604e9},
        {"RecShard (Full)", 69.07e9, 0.353e9},
    };

    TextTable t({"Formulation", "HBM/GPU/iter", "UVM/GPU/iter",
                 "UVM %", "Paper UVM %"});
    for (const auto &p : paper_rows) {
        const StrategyResult &s = eval.byName(p.name);
        t.addRow({s.name,
                  fmtDouble(s.hbmAccessesPerGpuIter() / 1e6, 2) +
                      "M",
                  fmtDouble(s.uvmAccessesPerGpuIter() / 1e6, 3) +
                      "M",
                  fmtDouble(100 * s.uvmAccessFraction(), 2) + "%",
                  fmtDouble(100 * p.uvm / (p.hbm + p.uvm), 2) +
                      "%"});
    }
    t.print(std::cout,
            "Table 6: RecShard ablation on RM3 (16 GPUs)");
    std::cout << "\nPaper ladder: CDF only 2.4% -> +Coverage 1.3% "
              << "-> +Pooling 0.9% -> Full 0.5% UVM-sourced "
              << "accesses.\n";
    return 0;
}
