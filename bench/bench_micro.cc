/**
 * @file
 * Microbenchmarks (google-benchmark) for the performance-critical
 * primitives: hashing, Zipf sampling, batch generation, CDF
 * construction, remap application, tier resolution, the solver's
 * split kernel, and a full engine iteration.
 */

#include <benchmark/benchmark.h>

#include "recshard/base/random.hh"
#include "recshard/datagen/model_zoo.hh"
#include "recshard/dist/frequency_cdf.hh"
#include "recshard/dist/zipf.hh"
#include "recshard/engine/execution.hh"
#include "recshard/hashing/hashers.hh"
#include "recshard/lp/simplex.hh"
#include "recshard/profiler/profiler.hh"
#include "recshard/remap/remap_table.hh"
#include "recshard/sharding/recshard_solver.hh"

namespace {

using namespace recshard;

void
BM_MixSplitMix64(benchmark::State &state)
{
    std::uint64_t x = 12345;
    for (auto _ : state) {
        x = mixSplitMix64(x);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_MixSplitMix64);

void
BM_FeatureHasher(benchmark::State &state)
{
    const FeatureHasher hasher(1'000'003, 42);
    std::uint64_t v = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(hasher(v++));
    }
}
BENCHMARK(BM_FeatureHasher);

void
BM_ZipfSample(benchmark::State &state)
{
    const ZipfSampler zipf(
        static_cast<std::uint64_t>(state.range(0)), 1.1);
    Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(zipf(rng));
    }
}
BENCHMARK(BM_ZipfSample)->Arg(1 << 16)->Arg(1 << 24)->Arg(1LL << 32);

void
BM_FeatureBatchGeneration(benchmark::State &state)
{
    const ModelSpec model = makeTinyModel(1, 100000, 3);
    SyntheticDataset data(model, 5);
    std::uint64_t batch_idx = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            data.featureBatch(0, 1024, batch_idx++));
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_FeatureBatchGeneration);

void
BM_FrequencyCdfBuild(benchmark::State &state)
{
    const std::uint64_t touched = state.range(0);
    Rng rng(11);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> counts;
    for (std::uint64_t r = 0; r < touched; ++r)
        counts.push_back({r, static_cast<std::uint64_t>(
                                 rng.uniformInt(1, 1 << 20))});
    for (auto _ : state) {
        auto copy = counts;
        benchmark::DoNotOptimize(
            FrequencyCdf(touched * 2, std::move(copy)));
    }
    state.SetItemsProcessed(state.iterations() * touched);
}
BENCHMARK(BM_FrequencyCdfBuild)->Arg(1 << 12)->Arg(1 << 18);

void
BM_RemapApply(benchmark::State &state)
{
    FeatureSpec spec;
    spec.name = "bench";
    spec.cardinality = 1 << 20;
    spec.hashSize = 1 << 19;
    spec.dim = 64;
    Rng rng(3);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> counts;
    for (std::uint64_t r = 0; r < (1 << 17); ++r)
        counts.push_back({r * 3, static_cast<std::uint64_t>(
                                     rng.uniformInt(1, 1000))});
    const FrequencyCdf cdf(spec.hashSize, counts);
    const RemapTable table = RemapTable::build(spec, cdf, 1 << 16);

    std::vector<std::uint64_t> indices(8192);
    for (auto &idx : indices)
        idx = static_cast<std::uint64_t>(
            rng.uniformInt(0, spec.hashSize - 1));
    for (auto _ : state) {
        auto copy = indices;
        table.remapIndices(copy);
        benchmark::DoNotOptimize(copy);
    }
    state.SetItemsProcessed(state.iterations() * indices.size());
}
BENCHMARK(BM_RemapApply);

void
BM_TierResolve(benchmark::State &state)
{
    Rng rng(5);
    std::vector<std::pair<std::uint64_t, std::uint64_t>> counts;
    for (std::uint64_t r = 0; r < (1 << 16); ++r)
        counts.push_back({r * 2, static_cast<std::uint64_t>(
                                     rng.uniformInt(1, 100))});
    const FrequencyCdf cdf(1 << 18, counts);
    const TierResolver resolver =
        TierResolver::split(cdf, 1 << 15, 1 << 18);
    std::uint64_t row = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            resolver.inHbm(row++ & ((1 << 18) - 1)));
    }
}
BENCHMARK(BM_TierResolve);

void
BM_SimplexSolve(benchmark::State &state)
{
    // A dense-ish random LP of the size B&B nodes see.
    const int n = state.range(0);
    Rng rng(9);
    LpProblem lp;
    for (int j = 0; j < n; ++j)
        lp.addVariable(0, 1, -rng.uniform(0.1, 2.0));
    for (int i = 0; i < n; ++i) {
        std::vector<LinearTerm> terms;
        for (int j = 0; j < n; ++j)
            terms.push_back({j, rng.uniform(0.0, 1.0)});
        lp.addConstraint(terms, Relation::LE, rng.uniform(1, 4));
    }
    const SimplexSolver solver(lp);
    for (auto _ : state) {
        benchmark::DoNotOptimize(solver.solve());
    }
}
BENCHMARK(BM_SimplexSolve)->Arg(16)->Arg(64);

void
BM_RecShardSolve(benchmark::State &state)
{
    const auto features = static_cast<std::uint32_t>(state.range(0));
    const ModelSpec model = makeTinyModel(features, 20000, 13);
    SyntheticDataset data(model, 5);
    const auto profiles = profileDataset(data, 8000, 4096);
    SystemSpec sys = SystemSpec::paper(4, 1.0);
    sys.hbm.capacityBytes = model.totalBytes() / 10;
    sys.uvm.capacityBytes = model.totalBytes();
    RecShardOptions opts;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            recShardPlan(model, profiles, sys, opts));
    }
}
BENCHMARK(BM_RecShardSolve)->Arg(16)->Arg(64)
    ->Unit(benchmark::kMillisecond);

void
BM_EngineIteration(benchmark::State &state)
{
    const ModelSpec model = makeTinyModel(8, 5000, 3);
    SyntheticDataset data(model, 5);
    const auto profiles = profileDataset(data, 5000, 2048);
    const SystemSpec sys = SystemSpec::paper(2, 1.0);
    ShardingPlan plan;
    plan.strategy = "bench";
    plan.tables.resize(model.numFeatures());
    for (std::uint32_t j = 0; j < model.numFeatures(); ++j) {
        plan.tables[j].gpu = j % 2;
        plan.tables[j].hbmRows = model.features[j].hashSize / 2;
    }
    ExecutionEngine engine(data, sys, EmbCostModel(sys));
    const auto resolvers =
        ExecutionEngine::buildResolvers(model, plan, profiles);
    ReplayConfig cfg;
    cfg.batchSize = 1024;
    cfg.warmupIterations = 0;
    cfg.measureIterations = 1;
    for (auto _ : state) {
        cfg.firstBatchIndex += 1;
        benchmark::DoNotOptimize(
            engine.replay({&plan}, {resolvers}, cfg));
    }
    state.SetItemsProcessed(state.iterations() * 1024);
}
BENCHMARK(BM_EngineIteration)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
