/**
 * @file
 * The planner-depth acceptance bench, with its headline as the exit
 * code:
 *
 *  1. Quality/speed gate — on every MILP-feasible table set the
 *     "lp-rounding" planner must land within 2% of the exact MILP's
 *     uniform bottleneck cost at >= 10x the MILP's solve speed
 *     (the LP relaxation solves once; branch-and-bound re-solves an
 *     LP per node).
 *  2. rm1 gate — "lp-rounding" and "anneal" must produce feasible,
 *     validated, seed-deterministic plans on the rm1 zoo, on a
 *     2-tier node and on a 3-tier (HBM/DRAM/SSD) node.
 *  3. Granularity sweep — the knee-style ICDF step autotuner's
 *     doubling sweep, printed per granularity, plus the per-table
 *     "recshard-tuned" planner against the uniform baseline.
 *
 * Any gate failure exits non-zero, so CI can smoke-run this binary
 * as a hard check.
 *
 * Run:   ./bench_planner_depth [--trials N] [--scale F] ...
 */

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "recshard/base/flags.hh"
#include "recshard/base/table.hh"
#include "recshard/base/units.hh"
#include "recshard/datagen/model_zoo.hh"
#include "recshard/planner/autotune.hh"
#include "recshard/planner/registry.hh"
#include "recshard/profiler/profiler.hh"
#include "recshard/tiering/topology.hh"

using namespace recshard;

namespace {

/** One capacity-pressured instance small enough for the MILP. */
struct MilpInstance
{
    std::uint32_t features;
    std::uint64_t rows;
    std::uint64_t seed;
    unsigned icdfSteps;
};

/** Identical placements and cost: the determinism criterion. */
bool
samePlan(const PlanResult &a, const PlanResult &b)
{
    if (a.plan.tables.size() != b.plan.tables.size())
        return false;
    for (std::size_t j = 0; j < a.plan.tables.size(); ++j) {
        if (a.plan.tables[j].gpu != b.plan.tables[j].gpu ||
            a.plan.tables[j].hbmRows != b.plan.tables[j].hbmRows ||
            a.plan.tables[j].tierRows != b.plan.tables[j].tierRows)
            return false;
    }
    return a.diag.bottleneckCost == b.diag.bottleneckCost;
}

} // namespace

int
main(int argc, char **argv)
{
    FlagSet flags("bench_planner_depth");
    flags.addInt("trials", 8, "lp-rounding trials per solve");
    flags.addDouble("scale", 2e-4, "rm1 row-count scale");
    flags.addInt("batch", 4096, "cost-model batch size");
    flags.addInt("profile-samples", 20000, "profiling samples");
    flags.addDouble("cost-slack", 1.02,
                    "lp-rounding cost gate vs the MILP optimum");
    flags.addDouble("speedup", 10.0,
                    "required MILP / lp-rounding solve-time ratio");
    flags.parse(argc, argv);

    const auto batch =
        static_cast<std::uint32_t>(flags.getInt("batch"));
    const auto samples = static_cast<std::uint64_t>(
        flags.getInt("profile-samples"));
    const double cost_slack = flags.getDouble("cost-slack");
    const double need_speedup = flags.getDouble("speedup");
    bool ok = true;

    // ------------------- 1. within 2% of the MILP at >= 10x speed
    const MilpInstance instances[] = {
        {7, 2000, 71, 5},
        {6, 1200, 77, 5},
        {8, 2500, 83, 6},
    };
    TextTable head({"Instance", "MILP (ms)", "LP-round (ms)",
                    "Gap", "MILP solve", "LP solve", "Speedup",
                    "Pass"});
    for (const MilpInstance &inst : instances) {
        const ModelSpec model =
            makeTinyModel(inst.features, inst.rows, inst.seed);
        SyntheticDataset data(model, inst.seed + 1);
        const auto profiles = profileDataset(data, samples, 4096);
        SystemSpec sys = SystemSpec::paper(2, 1.0);
        sys.hbm.capacityBytes = model.totalBytes() / 5;
        sys.uvm.capacityBytes = model.totalBytes();

        PlanRequest req =
            PlanRequest::make(model, profiles, sys, batch);
        req.milp.icdfSteps = inst.icdfSteps;
        req.rounding.trials =
            static_cast<std::uint32_t>(flags.getInt("trials"));

        const PlanResult milp =
            PlannerRegistry::create("milp")->plan(req);
        const PlanResult lp =
            PlannerRegistry::create("lp-rounding")->plan(req);
        if (!milp.diag.feasible || !lp.diag.feasible) {
            std::cerr << "FAIL: infeasible result on a "
                         "MILP-feasible instance\n";
            ok = false;
            continue;
        }

        const double gap =
            lp.diag.bottleneckCost / milp.diag.bottleneckCost;
        const double speedup = lp.diag.solveSeconds > 0
            ? milp.diag.solveSeconds / lp.diag.solveSeconds
            : need_speedup;
        const bool pass =
            gap <= cost_slack && speedup >= need_speedup;
        ok = ok && pass;

        head.addRow({std::to_string(inst.features) + " EMBs x " +
                         std::to_string(inst.rows) + " rows",
                     fmtDouble(milp.diag.bottleneckCost * 1e3, 3),
                     fmtDouble(lp.diag.bottleneckCost * 1e3, 3),
                     fmtDouble(gap, 4),
                     formatSeconds(milp.diag.solveSeconds),
                     formatSeconds(lp.diag.solveSeconds),
                     fmtDouble(speedup, 1) + "x",
                     pass ? "yes" : "NO"});
    }
    head.print(std::cout,
               "lp-rounding vs exact MILP (gate: gap <= " +
                   fmtDouble(cost_slack, 2) + ", speedup >= " +
                   fmtDouble(need_speedup, 0) + "x)");

    // --------- 2. rm1, 2-tier and 3-tier: feasible + deterministic
    const ModelSpec rm1 = makeRm1(flags.getDouble("scale"));
    SyntheticDataset rm1_data(rm1, 42);
    const auto rm1_profiles =
        profileDataset(rm1_data, samples, 2048);

    SystemSpec two_tier = SystemSpec::paper(2, 1.0);
    two_tier.hbm.capacityBytes =
        rm1.totalBytes() / (16 * two_tier.numGpus);
    two_tier.uvm.capacityBytes = rm1.totalBytes();
    const SystemSpec three_tier = threeTierNode(
        2, rm1.totalBytes() / 32, rm1.totalBytes() / 16,
        rm1.totalBytes() / 2 + (1ULL << 20));

    TextTable rm1_table({"Planner", "Node", "Bottleneck (ms)",
                         "Solve time", "Deterministic", "Pass"});
    const struct
    {
        const char *label;
        const SystemSpec &sys;
    } nodes[] = {{"2-tier", two_tier}, {"3-tier", three_tier}};
    for (const char *name : {"lp-rounding", "anneal"}) {
        for (const auto &node : nodes) {
            const PlanRequest req = PlanRequest::make(
                rm1, rm1_profiles, node.sys, batch);
            const auto planner = PlannerRegistry::create(name);
            const PlanResult a = planner->plan(req);
            const PlanResult b = planner->plan(req);
            const bool deterministic = samePlan(a, b);
            // plan() already validated both plans (fatal on a
            // malformed placement), so feasibility + determinism
            // is the whole gate.
            const bool pass =
                a.diag.feasible && b.diag.feasible && deterministic;
            ok = ok && pass;
            rm1_table.addRow(
                {name, node.label,
                 fmtDouble(a.diag.bottleneckCost * 1e3, 3),
                 formatSeconds(a.diag.solveSeconds),
                 deterministic ? "yes" : "NO",
                 pass ? "yes" : "NO"});
        }
    }
    rm1_table.print(std::cout,
                    "rm1 (" + std::to_string(rm1.numFeatures()) +
                        " EMBs): stochastic planners, gate: "
                        "feasible + seed-deterministic");

    // ------------------------- 3. the granularity autotuner's knee
    {
        const PlanRequest req = PlanRequest::make(
            rm1, rm1_profiles, two_tier, batch);
        AutotuneOptions sweep_opts = req.autotune;
        sweep_opts.maxSteps = 512; // show the full cost curve
        const GranularitySweep sweep =
            sweepGranularity(req, "recshard", sweep_opts);
        TextTable sweep_table({"ICDF steps", "Bottleneck (ms)",
                               "Solve time", "Knee"});
        for (const GranularitySweepPoint &p : sweep.points)
            sweep_table.addRow(
                {std::to_string(p.steps),
                 fmtDouble(p.bottleneckCost * 1e3, 3),
                 formatSeconds(p.solveSeconds),
                 p.steps == sweep.kneeSteps ? "<--" : ""});
        sweep_table.print(std::cout,
                          "Uniform-granularity doubling sweep "
                          "(recshard on rm1 2-tier)");

        const PlanResult uniform =
            PlannerRegistry::create("recshard")->plan(req);
        const PlanResult tuned =
            PlannerRegistry::create("recshard-tuned")->plan(req);
        const bool pass = tuned.diag.feasible &&
            tuned.diag.bottleneckCost <=
                uniform.diag.bottleneckCost * 1.01;
        ok = ok && pass;
        std::cout << "\nPer-table autotune: recshard-tuned "
                  << fmtDouble(tuned.diag.bottleneckCost * 1e3, 3)
                  << " ms vs uniform "
                  << fmtDouble(uniform.diag.bottleneckCost * 1e3, 3)
                  << " ms (" << tuned.diag.notes << ") — "
                  << (pass ? "pass" : "FAIL") << "\n";
    }

    std::cout << "\n"
              << (ok ? "ALL GATES PASS" : "GATE FAILURE") << "\n";
    return ok ? 0 : 1;
}
