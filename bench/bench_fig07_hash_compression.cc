/**
 * @file
 * Fig. 7 reproduction: the impact of hashing on one feature's value
 * frequency distribution — even with a hash size larger than the
 * observed uniques, collisions compress the space and sparsity
 * leaves a large fraction of the EMB unused (paper: 22% collisions,
 * 26% sparsity for the example feature).
 */

#include <iostream>
#include <unordered_set>

#include "recshard/base/random.hh"
#include "recshard/base/table.hh"
#include "recshard/dist/zipf.hh"
#include "recshard/hashing/birthday.hh"
#include "recshard/hashing/hashers.hh"
#include "recshard/report/experiment.hh"

using namespace recshard;

int
main(int argc, char **argv)
{
    FlagSet flags("bench_fig07_hash_compression");
    flags.addInt("cardinality", 60000, "raw categorical space");
    flags.addInt("hash-size", 24000, "EMB hash size");
    flags.addInt("samples", 2000000, "lookups drawn");
    flags.addDouble("alpha", 1.05, "value skew");
    flags.addInt("seed", 7, "rng seed");
    flags.parse(argc, argv);

    const auto card = static_cast<std::uint64_t>(
        flags.getInt("cardinality"));
    const auto hash_size = static_cast<std::uint64_t>(
        flags.getInt("hash-size"));
    const auto samples = static_cast<std::uint64_t>(
        flags.getInt("samples"));

    Rng rng(static_cast<std::uint64_t>(flags.getInt("seed")));
    const ZipfSampler zipf(card, flags.getDouble("alpha"));
    const FeatureHasher hasher(hash_size, 99);

    std::unordered_set<std::uint64_t> raw_seen;
    std::vector<bool> slot_used(hash_size, false);
    std::uint64_t used = 0;
    for (std::uint64_t s = 0; s < samples; ++s) {
        const std::uint64_t value = zipf(rng);
        raw_seen.insert(value);
        const std::uint64_t slot = hasher(value);
        if (!slot_used[slot]) {
            slot_used[slot] = true;
            ++used;
        }
    }

    const double uniques = static_cast<double>(raw_seen.size());
    const double sparsity = 1.0 - static_cast<double>(used) /
        static_cast<double>(hash_size);
    const double collisions =
        (uniques - static_cast<double>(used)) / uniques;

    TextTable t({"Quantity", "Measured", "Paper (Fig. 7)"});
    t.addRow({"unique pre-hash values seen",
              std::to_string(raw_seen.size()),
              "< hash size (red line right of curve)"});
    t.addRow({"hash size", std::to_string(hash_size), "-"});
    t.addRow({"EMB rows used", std::to_string(used),
              "post-hash curve ends left of pre-hash"});
    t.addRow({"sparsity (unused EMB fraction)",
              fmtDouble(100 * sparsity, 1) + "%", "26%"});
    t.addRow({"collided value fraction",
              fmtDouble(100 * collisions, 1) + "%", "22%"});
    t.addRow({"analytic collided fraction (birthday)",
              fmtDouble(100 * expectedCollidedFraction(
                                  uniques,
                                  static_cast<double>(hash_size)),
                        1) + "%",
              "-"});
    t.print(std::cout,
            "Fig. 7: hashing compresses the raw value space");
    return 0;
}
