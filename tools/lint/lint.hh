/**
 * @file
 * recshard_lint — determinism & hygiene static analysis for the
 * RecShard tree.
 *
 * The repo's load-bearing guarantee is that every plan, report, and
 * migration step is a pure function of (cluster, trace, config):
 * the DES router is the real-threads backend's deterministic twin
 * (byte-equal ledgers) and replan reports are bit-identical across
 * runs. Differential tests catch violations after they ship; this
 * linter catches the classic sources *in the diff*:
 *
 *   no-rand                std::rand/srand/random_device on a
 *                          decision path (seeded mt19937 via
 *                          base/random stays legal — it is
 *                          deterministic by construction).
 *   no-wallclock           ::now() / time( / clock( wall-clock
 *                          reads on a decision path. Virtual time
 *                          is data; the wall clock is not.
 *   no-unordered-iteration range-for or .begin()/.cbegin() over an
 *                          identifier declared as
 *                          std::unordered_map/std::unordered_set
 *                          in the same file (or its paired header).
 *                          Hash-map iteration order is the classic
 *                          determinism leak.
 *   no-naked-assert        assert() in src/ — use panic_if/fatal_if
 *                          (base/logging.hh), which survive NDEBUG
 *                          and print context.
 *   no-cout                std::cout outside report/ (benches and
 *                          examples are not scanned) — serving-path
 *                          code must not write to stdout.
 *   no-raw-mutex           std::mutex / std::condition_variable /
 *                          std::lock_guard etc. outside base/ —
 *                          use the annotated wrappers in
 *                          base/sync.hh so clang thread-safety
 *                          analysis sees the capability.
 *   bad-allow              a lint:allow annotation that names an
 *                          unknown rule or omits the reason.
 *
 * Which rules apply where is a per-directory policy (policyFor):
 * the determinism rules cover the decision-path modules, the
 * hygiene rules cover all of src/, and routing/realtime.* (the
 * wall-clock backend) and base/ carry explicit exceptions. A
 * violation is suppressible only by an inline annotation
 *
 *     // lint:allow(<rule>): <reason>
 *
 * on the finding's line or the line above, so every exception is
 * visible and justified in the diff. The scanner is token-level:
 * comments and string/char literals are blanked before matching,
 * so documentation may discuss rand() freely.
 */

#ifndef RECSHARD_TOOLS_LINT_LINT_HH
#define RECSHARD_TOOLS_LINT_LINT_HH

#include <string>
#include <vector>

namespace recshard::lint {

/** One rule violation. */
struct Finding
{
    std::string file; //!< path as given to lintFile
    int line = 0;     //!< 1-based
    std::string rule; //!< rule id, e.g. "no-unordered-iteration"
    std::string message;
};

/** Rule metadata (documentation order). */
struct RuleInfo
{
    std::string id;
    std::string summary;
};

/** Every rule the engine knows, documentation order. */
const std::vector<RuleInfo> &rules();

/** Rules enabled for one file path. */
struct Policy
{
    bool noRand = false;
    bool noWallclock = false;
    bool noUnorderedIteration = false;
    bool noNakedAssert = false;
    bool noCout = false;
    bool noRawMutex = false;

    bool any() const
    {
        return noRand || noWallclock || noUnorderedIteration ||
            noNakedAssert || noCout || noRawMutex;
    }
};

/**
 * Per-directory policy map. `path` is matched on its
 * "src/recshard/<module>/..." suffix; paths outside src/recshard
 * get an empty policy (nothing enforced). See tools/lint/README.md
 * for the full table.
 */
Policy policyFor(const std::string &path);

/**
 * Lint one file's contents against policyFor(path).
 *
 * @param path            Path used for policy selection and
 *                        reporting (need not exist on disk).
 * @param contents        The file's text.
 * @param header_contents Optional paired-header text; only its
 *                        unordered-container declarations are
 *                        consulted, so member iteration in a .cc
 *                        over a member declared in its .hh is
 *                        caught.
 */
std::vector<Finding> lintFile(const std::string &path,
                              const std::string &contents,
                              const std::string &header_contents = "");

/**
 * Lint every .hh/.cc under `root`/src/recshard (sorted walk;
 * deterministic output order). Fatal-free: IO problems surface as
 * findings with rule "io-error".
 */
std::vector<Finding> lintTree(const std::string &root);

/** "path:line: [rule] message" */
std::string formatFinding(const Finding &finding);

} // namespace recshard::lint

#endif // RECSHARD_TOOLS_LINT_LINT_HH
