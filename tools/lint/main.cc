/**
 * @file
 * recshard_lint CLI.
 *
 *   recshard_lint [--root <repo-root>] [--list-rules]
 *
 * Lints every .hh/.cc under <root>/src/recshard against the
 * per-directory policies in tools/lint/lint.cc and prints one line
 * per violation. Exit status: 0 clean, 1 violations found, 2 usage
 * or IO error. Runs as the `recshard_lint` ctest target and in the
 * CI static-analysis job, so an unallowlisted violation fails
 * tier-1 verify.
 */

#include <cstring>
#include <iostream>
#include <string>

#include "tools/lint/lint.hh"

int
main(int argc, char **argv)
{
    std::string root = ".";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--list-rules") {
            for (const auto &rule : recshard::lint::rules())
                std::cout << rule.id << "\t" << rule.summary
                          << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: recshard_lint [--root <dir>] "
                         "[--list-rules]\n";
            return 0;
        } else {
            std::cerr << "recshard_lint: unknown argument '" << arg
                      << "'\n";
            return 2;
        }
    }

    const auto findings = recshard::lint::lintTree(root);
    bool io_error = false;
    for (const auto &finding : findings) {
        std::cout << recshard::lint::formatFinding(finding) << "\n";
        io_error = io_error || finding.rule == "io-error";
    }
    if (io_error)
        return 2;
    if (!findings.empty()) {
        std::cout << findings.size()
                  << " violation(s). Fix them, or annotate a "
                     "justified exception with "
                     "'// lint:allow(<rule>): <reason>' "
                     "(tools/lint/README.md).\n";
        return 1;
    }
    std::cout << "recshard_lint: clean\n";
    return 0;
}
