#include "tools/lint/lint.hh"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

namespace recshard::lint {

namespace {

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Result of splitting a file into code and comments. */
struct ScanText
{
    /** Same length as the input; comments and string/char literals
     *  blanked to spaces (newlines preserved). */
    std::string code;
    /** Comment text per 1-based line (concatenated if several). */
    std::map<int, std::string> comments;
    /** Offset of each line start in `code`, for offset->line. */
    std::vector<std::size_t> lineStarts;
};

/**
 * Blank comments and string/char literals. Token-level fidelity is
 * all the rules need; the one C++ lexing subtlety handled specially
 * is digit separators (1'000'000), which must not open a char
 * literal.
 */
ScanText
scan(const std::string &text)
{
    ScanText out;
    out.code.assign(text.size(), ' ');
    out.lineStarts.push_back(0);

    int line = 1;
    std::size_t i = 0;
    const std::size_t n = text.size();
    auto keep = [&](std::size_t j) { out.code[j] = text[j]; };
    auto newline = [&](std::size_t j) {
        out.code[j] = '\n';
        ++line;
        out.lineStarts.push_back(j + 1);
    };

    while (i < n) {
        const char c = text[i];
        if (c == '\n') {
            newline(i);
            ++i;
            continue;
        }
        // Line comment: capture its text for lint:allow parsing.
        if (c == '/' && i + 1 < n && text[i + 1] == '/') {
            std::size_t j = i;
            while (j < n && text[j] != '\n')
                ++j;
            out.comments[line] += text.substr(i, j - i);
            i = j;
            continue;
        }
        // Block comment (may span lines).
        if (c == '/' && i + 1 < n && text[i + 1] == '*') {
            std::size_t j = i + 2;
            std::size_t seg = i;
            while (j + 1 < n &&
                   !(text[j] == '*' && text[j + 1] == '/')) {
                if (text[j] == '\n') {
                    out.comments[line] +=
                        text.substr(seg, j - seg);
                    newline(j);
                    seg = j + 1;
                }
                ++j;
            }
            j = j + 1 < n ? j + 2 : n;
            out.comments[line] += text.substr(seg, j - seg);
            i = j;
            continue;
        }
        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
            (i == 0 || !isIdentChar(text[i - 1]))) {
            std::size_t d = i + 2;
            while (d < n && text[d] != '(' && text[d] != '\n')
                ++d;
            const std::string close =
                ")" + text.substr(i + 2, d - (i + 2)) + "\"";
            std::size_t j = text.find(close, d);
            j = j == std::string::npos ? n : j + close.size();
            for (std::size_t k = i; k < j; ++k)
                if (text[k] == '\n')
                    newline(k);
            i = j;
            continue;
        }
        // String literal.
        if (c == '"') {
            std::size_t j = i + 1;
            while (j < n && text[j] != '"' && text[j] != '\n') {
                if (text[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            i = j < n ? j + 1 : n;
            continue;
        }
        // Char literal — unless this quote is a digit separator
        // (both neighbors are identifier characters).
        if (c == '\'') {
            if (i > 0 && isIdentChar(text[i - 1]) && i + 1 < n &&
                isIdentChar(text[i + 1])) {
                ++i; // 1'000'000
                continue;
            }
            std::size_t j = i + 1;
            while (j < n && text[j] != '\'' && text[j] != '\n') {
                if (text[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            i = j < n ? j + 1 : n;
            continue;
        }
        keep(i);
        ++i;
    }
    return out;
}

int
lineOf(const ScanText &st, std::size_t offset)
{
    const auto it = std::upper_bound(st.lineStarts.begin(),
                                     st.lineStarts.end(), offset);
    return static_cast<int>(it - st.lineStarts.begin());
}

/** Whole-word occurrences of `word` in the code view. */
std::vector<std::size_t>
findWord(const std::string &code, const std::string &word)
{
    std::vector<std::size_t> hits;
    std::size_t pos = 0;
    while ((pos = code.find(word, pos)) != std::string::npos) {
        const bool left_ok =
            pos == 0 || !isIdentChar(code[pos - 1]);
        const std::size_t end = pos + word.size();
        const bool right_ok =
            end >= code.size() || !isIdentChar(code[end]);
        if (left_ok && right_ok)
            hits.push_back(pos);
        pos = end;
    }
    return hits;
}

/** First non-space character before `pos`, or '\0'. */
char
prevSignificant(const std::string &code, std::size_t pos,
                std::size_t *where = nullptr)
{
    while (pos > 0) {
        --pos;
        const char c = code[pos];
        if (!std::isspace(static_cast<unsigned char>(c))) {
            if (where)
                *where = pos;
            return c;
        }
    }
    return '\0';
}

/** Does `(` follow (skipping whitespace)? */
bool
callFollows(const std::string &code, std::size_t end)
{
    while (end < code.size() &&
           std::isspace(static_cast<unsigned char>(code[end])))
        ++end;
    return end < code.size() && code[end] == '(';
}

/** The identifier ending at `end` (exclusive), or "". */
std::string
identEndingAt(const std::string &code, std::size_t end)
{
    std::size_t b = end;
    while (b > 0 && isIdentChar(code[b - 1]))
        --b;
    return code.substr(b, end - b);
}

/**
 * Names declared as std::unordered_map / std::unordered_set in the
 * code view: after the template argument list (angle brackets
 * balanced), the next identifier is taken as the declared name.
 * Matches members, locals, and parameters; deliberately ignores
 * `using` aliases (none in the tree; see README limitations).
 */
std::set<std::string>
unorderedDeclarations(const std::string &code)
{
    std::set<std::string> names;
    for (const char *type : {"unordered_map", "unordered_set"}) {
        for (const std::size_t pos : findWord(code, type)) {
            std::size_t j = pos + std::string(type).size();
            while (j < code.size() &&
                   std::isspace(static_cast<unsigned char>(code[j])))
                ++j;
            if (j >= code.size() || code[j] != '<')
                continue;
            int depth = 0;
            for (; j < code.size(); ++j) {
                if (code[j] == '<')
                    ++depth;
                else if (code[j] == '>' && --depth == 0) {
                    ++j;
                    break;
                }
            }
            // Skip whitespace, '&', '*' before the name.
            while (j < code.size() &&
                   (std::isspace(
                        static_cast<unsigned char>(code[j])) ||
                    code[j] == '&' || code[j] == '*'))
                ++j;
            std::size_t b = j;
            while (j < code.size() && isIdentChar(code[j]))
                ++j;
            if (j > b)
                names.insert(code.substr(b, j - b));
        }
    }
    return names;
}

/** lint:allow(<rule>): <reason> annotations found in comments. */
struct Allow
{
    int line; //!< line the annotation sits on
    std::string rule;
    bool wellFormed; //!< known rule id and non-empty reason
};

std::vector<Allow>
parseAllows(const ScanText &st)
{
    std::vector<Allow> out;
    static const std::string kTag = "lint:allow(";
    for (const auto &[line, comment] : st.comments) {
        std::size_t pos = 0;
        while ((pos = comment.find(kTag, pos)) !=
               std::string::npos) {
            const std::size_t open = pos + kTag.size();
            const std::size_t close = comment.find(')', open);
            pos = open;
            if (close == std::string::npos)
                continue;
            Allow a;
            a.line = line;
            a.rule = comment.substr(open, close - open);
            bool known = false;
            for (const RuleInfo &r : rules())
                known = known || r.id == a.rule;
            // Reason: non-whitespace after "): ".
            bool reason = false;
            std::size_t r = close + 1;
            if (r < comment.size() && comment[r] == ':') {
                for (++r; r < comment.size(); ++r)
                    if (!std::isspace(static_cast<unsigned char>(
                            comment[r]))) {
                        reason = true;
                        break;
                    }
            }
            a.wellFormed = known && reason;
            out.push_back(a);
        }
    }
    return out;
}

/** Emission context shared by the rule checkers. */
struct Emitter
{
    const std::string &path;
    const ScanText &st;
    const std::vector<Allow> &allows;
    std::vector<Finding> &findings;
    /** (line, rule) pairs already reported (dedupe). */
    std::set<std::pair<int, std::string>> seen;

    void
    emit(std::size_t offset, const std::string &rule,
         const std::string &message)
    {
        const int line = lineOf(st, offset);
        if (!seen.insert({line, rule}).second)
            return;
        // A well-formed allow on this line or the line above
        // suppresses the finding.
        for (const Allow &a : allows)
            if (a.wellFormed && a.rule == rule &&
                (a.line == line || a.line == line - 1))
                return;
        findings.push_back({path, line, rule, message});
    }
};

void
checkRand(Emitter &em)
{
    const std::string &code = em.st.code;
    for (const char *word : {"srand", "random_device"})
        for (const std::size_t pos : findWord(code, word))
            em.emit(pos, "no-rand",
                    std::string(word) +
                        " is nondeterministic on a decision path; "
                        "use a seeded generator from base/random");
    for (const std::size_t pos : findWord(code, "rand"))
        if (callFollows(code, pos + 4))
            em.emit(pos, "no-rand",
                    "rand() is nondeterministic on a decision "
                    "path; use a seeded generator from "
                    "base/random");
}

void
checkWallclock(Emitter &em)
{
    const std::string &code = em.st.code;
    // Any ::now( — steady_clock, system_clock, Clock aliases.
    for (const std::size_t pos : findWord(code, "now")) {
        if (!callFollows(code, pos + 3))
            continue;
        std::size_t where = 0;
        if (prevSignificant(code, pos, &where) == ':' &&
            where > 0 && code[where - 1] == ':')
            em.emit(pos, "no-wallclock",
                    "::now() reads the wall clock on a decision "
                    "path; virtual time is carried by the trace");
    }
    // Bare time( / clock( calls (member calls x.time(...) are the
    // cost model, not the wall clock) and the POSIX readers.
    for (const char *word : {"time", "clock"}) {
        for (const std::size_t pos : findWord(code, word)) {
            if (!callFollows(code, pos + std::strlen(word)))
                continue;
            std::size_t where = 0;
            const char prev = prevSignificant(code, pos, &where);
            if (prev == '.')
                continue; // member call: cost.time(...)
            if (prev == '>' && where > 0 && code[where - 1] == '-')
                continue; // ptr->time(...)
            if (prev == ':') {
                // Qualified: only std::time / std::clock are the
                // C wall-clock readers.
                const std::string qual = identEndingAt(
                    code, where >= 1 ? where - 1 : 0);
                if (qual != "std")
                    continue;
            }
            em.emit(pos, "no-wallclock",
                    std::string(word) +
                        "() reads the wall clock on a decision "
                        "path; virtual time is carried by the "
                        "trace");
        }
    }
    for (const char *word : {"gettimeofday", "clock_gettime"})
        for (const std::size_t pos : findWord(code, word))
            em.emit(pos, "no-wallclock",
                    std::string(word) +
                        " reads the wall clock on a decision path");
}

void
checkUnorderedIteration(Emitter &em,
                        const std::set<std::string> &unordered)
{
    if (unordered.empty())
        return;
    const std::string &code = em.st.code;

    // Range-for whose range expression's trailing identifier is a
    // declared unordered container: for (auto &kv : pf.sparse).
    for (const std::size_t pos : findWord(code, "for")) {
        std::size_t j = pos + 3;
        while (j < code.size() &&
               std::isspace(static_cast<unsigned char>(code[j])))
            ++j;
        if (j >= code.size() || code[j] != '(')
            continue;
        int depth = 0;
        std::size_t colon = std::string::npos;
        std::size_t close = std::string::npos;
        for (std::size_t k = j; k < code.size(); ++k) {
            const char c = code[k];
            if (c == '(')
                ++depth;
            else if (c == ')') {
                if (--depth == 0) {
                    close = k;
                    break;
                }
            } else if (c == ':' && depth == 1 &&
                       colon == std::string::npos) {
                const bool dbl =
                    (k > 0 && code[k - 1] == ':') ||
                    (k + 1 < code.size() && code[k + 1] == ':');
                if (!dbl)
                    colon = k;
            }
        }
        if (colon == std::string::npos ||
            close == std::string::npos)
            continue;
        // Trailing identifier of the range expression.
        std::size_t e = close;
        while (e > colon && (std::isspace(static_cast<unsigned char>(
                                 code[e - 1])) ||
                             code[e - 1] == ')'))
            --e;
        const std::string name = identEndingAt(code, e);
        if (unordered.count(name))
            em.emit(pos, "no-unordered-iteration",
                    "iteration over unordered container '" + name +
                        "': hash order is implementation-defined "
                        "and must never reach a plan or report");
    }

    // ident.begin()/.cbegin() — iterator-pair use (e.g.
    // constructing a vector) is iteration all the same. Only
    // begin() triggers: iteration necessarily starts there, while
    // a bare `it != c.end()` is the find()-probe idiom, not a walk.
    for (const char *word : {"begin", "cbegin"}) {
        for (const std::size_t pos : findWord(code, word)) {
            if (!callFollows(code, pos + std::strlen(word)))
                continue;
            std::size_t where = 0;
            if (prevSignificant(code, pos, &where) != '.')
                continue;
            const std::string name = identEndingAt(code, where);
            if (unordered.count(name))
                em.emit(pos, "no-unordered-iteration",
                        "iterator over unordered container '" +
                            name +
                            "': hash order is implementation-"
                            "defined and must never reach a plan "
                            "or report");
        }
    }
}

void
checkNakedAssert(Emitter &em)
{
    for (const std::size_t pos : findWord(em.st.code, "assert"))
        if (callFollows(em.st.code, pos + 6))
            em.emit(pos, "no-naked-assert",
                    "assert() vanishes under NDEBUG; use "
                    "panic_if/fatal_if from base/logging.hh");
}

void
checkCout(Emitter &em)
{
    const std::string &code = em.st.code;
    for (const std::size_t pos : findWord(code, "cout")) {
        std::size_t where = 0;
        if (prevSignificant(code, pos, &where) == ':' &&
            where >= 1 && code[where - 1] == ':' &&
            identEndingAt(code, where - 1) == "std")
            em.emit(pos, "no-cout",
                    "std::cout outside report/ pollutes serving "
                    "output; route through report/ or "
                    "base/logging.hh");
    }
}

void
checkRawMutex(Emitter &em)
{
    static const char *kBanned[] = {
        "mutex",          "timed_mutex", "recursive_mutex",
        "shared_mutex",   "lock_guard",  "unique_lock",
        "scoped_lock",    "shared_lock", "condition_variable",
        "condition_variable_any",
    };
    const std::string &code = em.st.code;
    for (const char *word : kBanned) {
        for (const std::size_t pos : findWord(code, word)) {
            std::size_t where = 0;
            if (prevSignificant(code, pos, &where) == ':' &&
                where >= 1 && code[where - 1] == ':' &&
                identEndingAt(code, where - 1) == "std")
                em.emit(pos, "no-raw-mutex",
                        "std::" + std::string(word) +
                            " is invisible to clang thread-safety "
                            "analysis; use "
                            "Mutex/MutexLock/CondVar from "
                            "base/sync.hh");
        }
    }
}

/** Report malformed lint:allow annotations. */
void
checkAllows(Emitter &em)
{
    for (const Allow &a : em.allows)
        if (!a.wellFormed)
            em.findings.push_back(
                {em.path, a.line, "bad-allow",
                 "malformed lint:allow — must be "
                 "'lint:allow(<known-rule>): <reason>' with a "
                 "non-empty reason (got rule '" +
                     a.rule + "')"});
}

/** Longest src/recshard-relative suffix of `path`, or "". */
std::string
repoRelative(const std::string &path)
{
    const std::size_t pos = path.rfind("src/recshard/");
    return pos == std::string::npos ? "" : path.substr(pos);
}

} // namespace

const std::vector<RuleInfo> &
rules()
{
    static const std::vector<RuleInfo> kRules = {
        {"no-rand",
         "std::rand/srand/random_device on a decision path"},
        {"no-wallclock",
         "::now()/time()/clock() wall-clock reads on a decision "
         "path"},
        {"no-unordered-iteration",
         "iteration over std::unordered_map/std::unordered_set on "
         "a decision path"},
        {"no-naked-assert",
         "assert() in src/ — use panic_if/fatal_if"},
        {"no-cout", "std::cout outside report/"},
        {"no-raw-mutex",
         "raw std::mutex family outside base/ — use base/sync.hh"},
        {"bad-allow",
         "malformed lint:allow(<rule>): <reason> annotation"},
    };
    return kRules;
}

Policy
policyFor(const std::string &path)
{
    Policy p;
    const std::string rel = repoRelative(path);
    if (rel.empty())
        return p; // outside src/recshard: nothing enforced

    const std::string mod =
        rel.substr(std::string("src/recshard/").size());
    const auto inDir = [&](const char *dir) {
        return mod.rfind(std::string(dir) + "/", 0) == 0;
    };

    // Hygiene rules: everywhere in src/.
    p.noNakedAssert = true;
    p.noCout = !inDir("report"); // report/ renders tables to stdout
    p.noRawMutex = !inDir("base"); // base/sync.hh wraps the raw one

    // Determinism rules: the decision-path modules. profiler/ and
    // dist/ build the CDFs every plan is a function of; serving/
    // owns the cache whose ledger must stay backend-byte-equal.
    static const char *kDecisionDirs[] = {
        "planner", "sharding", "tiering",  "routing", "replan",
        "overload", "report",  "profiler", "serving", "dist",
    };
    bool decision = false;
    for (const char *dir : kDecisionDirs)
        decision = decision || inDir(dir);
    p.noRand = decision;
    p.noWallclock = decision;
    p.noUnorderedIteration = decision;

    // Per-file exceptions: the wall-clock serving backend measures
    // real time by design.
    if (mod == "routing/realtime.hh" ||
        mod == "routing/realtime.cc")
        p.noWallclock = false;

    return p;
}

std::vector<Finding>
lintFile(const std::string &path, const std::string &contents,
         const std::string &header_contents)
{
    const Policy policy = policyFor(path);
    std::vector<Finding> findings;

    const ScanText st = scan(contents);
    const std::vector<Allow> allows = parseAllows(st);
    Emitter em{path, st, allows, findings, {}};

    // Malformed allows are reported wherever any linting happens —
    // a broken annotation must never silently suppress.
    checkAllows(em);
    if (!policy.any())
        return findings;

    if (policy.noRand)
        checkRand(em);
    if (policy.noWallclock)
        checkWallclock(em);
    if (policy.noUnorderedIteration) {
        std::set<std::string> unordered =
            unorderedDeclarations(st.code);
        if (!header_contents.empty()) {
            const ScanText hdr = scan(header_contents);
            for (const std::string &name :
                 unorderedDeclarations(hdr.code))
                unordered.insert(name);
        }
        checkUnorderedIteration(em, unordered);
    }
    if (policy.noNakedAssert)
        checkNakedAssert(em);
    if (policy.noCout)
        checkCout(em);
    if (policy.noRawMutex)
        checkRawMutex(em);

    std::sort(findings.begin(), findings.end(),
              [](const Finding &a, const Finding &b) {
                  return a.line != b.line ? a.line < b.line
                                          : a.rule < b.rule;
              });
    return findings;
}

std::vector<Finding>
lintTree(const std::string &root)
{
    namespace fs = std::filesystem;
    std::vector<Finding> findings;
    const fs::path base = fs::path(root) / "src" / "recshard";
    if (!fs::exists(base)) {
        findings.push_back({base.string(), 0, "io-error",
                            "source tree not found"});
        return findings;
    }

    std::vector<fs::path> files;
    for (const auto &entry : fs::recursive_directory_iterator(base))
        if (entry.is_regular_file()) {
            const std::string ext = entry.path().extension();
            if (ext == ".hh" || ext == ".cc" || ext == ".h" ||
                ext == ".cpp")
                files.push_back(entry.path());
        }
    std::sort(files.begin(), files.end());

    for (const fs::path &file : files) {
        std::ifstream in(file);
        if (!in) {
            findings.push_back(
                {file.string(), 0, "io-error", "unreadable file"});
            continue;
        }
        std::ostringstream body;
        body << in.rdbuf();

        std::string header;
        if (file.extension() == ".cc" ||
            file.extension() == ".cpp") {
            fs::path hh = file;
            hh.replace_extension(".hh");
            std::ifstream hin(hh);
            if (hin) {
                std::ostringstream hs;
                hs << hin.rdbuf();
                header = hs.str();
            }
        }
        std::vector<Finding> file_findings =
            lintFile(file.string(), body.str(), header);
        findings.insert(findings.end(), file_findings.begin(),
                        file_findings.end());
    }
    return findings;
}

std::string
formatFinding(const Finding &finding)
{
    std::ostringstream os;
    os << finding.file << ":" << finding.line << ": ["
       << finding.rule << "] " << finding.message;
    return os.str();
}

} // namespace recshard::lint
